package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"miras/internal/mat"
)

func newTestNet(t *testing.T, cfg Config, seed int64) *Network {
	t.Helper()
	return NewNetwork(cfg, rand.New(rand.NewSource(seed)))
}

func TestNewNetworkShapes(t *testing.T) {
	net := newTestNet(t, Config{Sizes: []int{8, 20, 20, 4}, AuxLayer: -1}, 1)
	if got := len(net.Layers); got != 3 {
		t.Fatalf("layers=%d, want 3", got)
	}
	if net.InDim() != 8 || net.OutDim() != 4 {
		t.Fatalf("dims in=%d out=%d, want 8/4", net.InDim(), net.OutDim())
	}
	wantShapes := [][2]int{{20, 8}, {20, 20}, {4, 20}}
	for l, s := range wantShapes {
		if net.Layers[l].OutDim() != s[0] || net.Layers[l].InDim() != s[1] {
			t.Fatalf("layer %d shape %dx%d, want %dx%d",
				l, net.Layers[l].OutDim(), net.Layers[l].InDim(), s[0], s[1])
		}
	}
}

func TestNewNetworkAuxShapes(t *testing.T) {
	// Critic-style: state 4 → 32 → (32 with action 3 injected) → 1.
	net := newTestNet(t, Config{Sizes: []int{4, 32, 32, 1}, AuxLayer: 1, AuxDim: 3}, 2)
	if net.Layers[1].InDim() != 35 {
		t.Fatalf("aux layer input dim=%d, want 35", net.Layers[1].InDim())
	}
	if net.InDim() != 4 {
		t.Fatalf("InDim=%d, want 4", net.InDim())
	}
	out := net.Forward([]float64{1, 2, 3, 4}, []float64{0.1, 0.2, 0.3})
	if len(out) != 1 {
		t.Fatalf("output length %d, want 1", len(out))
	}
}

func TestForwardDeterministic(t *testing.T) {
	net := newTestNet(t, Config{Sizes: []int{3, 5, 2}, AuxLayer: -1}, 3)
	x := []float64{0.5, -0.3, 1.2}
	a := net.Forward(x, nil)
	b := net.Forward(x, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Forward is not deterministic")
		}
	}
}

func TestForwardHandComputedTinyNet(t *testing.T) {
	// 2 → 1 identity network, manually set weights: y = 2x₀ − x₁ + 0.5.
	net := &Network{AuxLayer: -1, Layers: []*Dense{{
		W:   mat.NewFromSlice(1, 2, []float64{2, -1}),
		B:   []float64{0.5},
		Act: Identity{},
	}}}
	got := net.Forward([]float64{3, 4}, nil)
	if math.Abs(got[0]-2.5) > 1e-12 {
		t.Fatalf("got %g, want 2.5", got[0])
	}
}

func TestForwardPanicsOnWrongInput(t *testing.T) {
	net := newTestNet(t, Config{Sizes: []int{3, 2}, AuxLayer: -1}, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong input length")
		}
	}()
	net.Forward([]float64{1, 2}, nil)
}

func TestForwardPanicsOnUnexpectedAux(t *testing.T) {
	net := newTestNet(t, Config{Sizes: []int{3, 2}, AuxLayer: -1}, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unexpected aux input")
		}
	}()
	net.Forward([]float64{1, 2, 3}, []float64{1})
}

// numericalGrad computes d loss/d theta by central differences for the
// given parameter accessor.
func numericalGrad(f func() float64, get func() float64, set func(float64)) float64 {
	const h = 1e-5
	orig := get()
	set(orig + h)
	up := f()
	set(orig - h)
	down := f()
	set(orig)
	return (up - down) / (2 * h)
}

// TestBackwardMatchesNumericalGradient is the core correctness test for the
// whole package: analytic backprop gradients must agree with central
// differences for every parameter, across activations and aux injection.
func TestBackwardMatchesNumericalGradient(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		aux  bool
	}{
		{"relu-identity", Config{Sizes: []int{3, 6, 2}, Hidden: ReLU{}, Output: Identity{}, AuxLayer: -1}, false},
		{"tanh-identity", Config{Sizes: []int{3, 6, 6, 2}, Hidden: Tanh{}, Output: Identity{}, AuxLayer: -1}, false},
		{"tanh-softmax", Config{Sizes: []int{4, 8, 3}, Hidden: Tanh{}, Output: Softmax{}, AuxLayer: -1}, false},
		{"sigmoid-identity", Config{Sizes: []int{3, 5, 2}, Hidden: Sigmoid{}, Output: Identity{}, AuxLayer: -1}, false},
		{"critic-aux", Config{Sizes: []int{3, 6, 6, 1}, Hidden: Tanh{}, Output: Identity{}, AuxLayer: 1, AuxDim: 2}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			net := NewNetwork(tc.cfg, rng)
			x := make([]float64, net.InDim())
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			var aux []float64
			if tc.aux {
				aux = make([]float64, net.AuxDim)
				for i := range aux {
					aux[i] = rng.NormFloat64()
				}
			}
			target := make([]float64, net.OutDim())
			for i := range target {
				target[i] = rng.NormFloat64()
			}

			loss := func() float64 {
				pred := net.Forward(x, aux)
				d := make([]float64, len(pred))
				return MSE(d, pred, target)
			}

			// Analytic gradients.
			cache := NewCache(net)
			pred := net.ForwardCache(cache, x, aux)
			dOut := make([]float64, len(pred))
			MSE(dOut, pred, target)
			g := NewGrads(net)
			net.Backward(cache, dOut, g)

			const tol = 1e-6
			for l, layer := range net.Layers {
				for i := range layer.W.Data {
					num := numericalGrad(loss,
						func() float64 { return layer.W.Data[i] },
						func(v float64) { layer.W.Data[i] = v })
					if math.Abs(num-g.W[l].Data[i]) > tol {
						t.Fatalf("layer %d W[%d]: analytic %g vs numeric %g", l, i, g.W[l].Data[i], num)
					}
				}
				for i := range layer.B {
					num := numericalGrad(loss,
						func() float64 { return layer.B[i] },
						func(v float64) { layer.B[i] = v })
					if math.Abs(num-g.B[l][i]) > tol {
						t.Fatalf("layer %d B[%d]: analytic %g vs numeric %g", l, i, g.B[l][i], num)
					}
				}
			}
		})
	}
}

// TestBackwardInputGradients checks dX and dAux against central differences.
func TestBackwardInputGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := NewNetwork(Config{
		Sizes: []int{3, 8, 8, 1}, Hidden: Tanh{}, Output: Identity{},
		AuxLayer: 1, AuxDim: 2,
	}, rng)
	x := []float64{0.3, -0.7, 1.1}
	aux := []float64{0.5, -0.2}
	target := []float64{0.9}

	loss := func() float64 {
		pred := net.Forward(x, aux)
		d := make([]float64, 1)
		return MSE(d, pred, target)
	}

	cache := NewCache(net)
	pred := net.ForwardCache(cache, x, aux)
	dOut := make([]float64, 1)
	MSE(dOut, pred, target)
	g := NewGrads(net)
	dX, dAux := net.Backward(cache, dOut, g)

	const tol = 1e-6
	for i := range x {
		num := numericalGrad(loss,
			func() float64 { return x[i] },
			func(v float64) { x[i] = v })
		if math.Abs(num-dX[i]) > tol {
			t.Fatalf("dX[%d]: analytic %g vs numeric %g", i, dX[i], num)
		}
	}
	for i := range aux {
		num := numericalGrad(loss,
			func() float64 { return aux[i] },
			func(v float64) { aux[i] = v })
		if math.Abs(num-dAux[i]) > tol {
			t.Fatalf("dAux[%d]: analytic %g vs numeric %g", i, dAux[i], num)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	net := newTestNet(t, Config{Sizes: []int{2, 4, 2}, AuxLayer: -1}, 8)
	clone := net.Clone()
	clone.Layers[0].W.Data[0] += 100
	if net.Layers[0].W.Data[0] == clone.Layers[0].W.Data[0] {
		t.Fatal("Clone shares weight storage")
	}
	clone.Layers[0].B[0] += 100
	if net.Layers[0].B[0] == clone.Layers[0].B[0] {
		t.Fatal("Clone shares bias storage")
	}
}

func TestSoftUpdateMovesTowardSource(t *testing.T) {
	a := newTestNet(t, Config{Sizes: []int{2, 3, 1}, AuxLayer: -1}, 9)
	b := newTestNet(t, Config{Sizes: []int{2, 3, 1}, AuxLayer: -1}, 10)
	orig := a.Layers[0].W.At(0, 0)
	src := b.Layers[0].W.At(0, 0)
	a.SoftUpdateFrom(b, 0.25)
	want := 0.75*orig + 0.25*src
	if got := a.Layers[0].W.At(0, 0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("soft update got %g, want %g", got, want)
	}
	// tau=1 must copy exactly.
	a.SoftUpdateFrom(b, 1)
	if got := a.Layers[0].W.At(0, 0); got != src {
		t.Fatalf("tau=1 soft update got %g, want %g", got, src)
	}
}

func TestCopyParamsFrom(t *testing.T) {
	a := newTestNet(t, Config{Sizes: []int{2, 3, 1}, AuxLayer: -1}, 11)
	b := newTestNet(t, Config{Sizes: []int{2, 3, 1}, AuxLayer: -1}, 12)
	a.CopyParamsFrom(b)
	x := []float64{0.4, -1.3}
	ay, by := a.Forward(x, nil), b.Forward(x, nil)
	if ay[0] != by[0] {
		t.Fatal("CopyParamsFrom did not make networks identical")
	}
}

func TestPerturbFromChangesOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	src := NewNetwork(Config{Sizes: []int{3, 16, 2}, AuxLayer: -1}, rng)
	perturbed := src.Clone()
	perturbed.PerturbFrom(src, 0.1, rng)
	x := []float64{1, 2, 3}
	a, b := src.Forward(x, nil), perturbed.Forward(x, nil)
	if mat.VecDist(a, b) == 0 {
		t.Fatal("perturbation left outputs identical")
	}
	// Zero sigma must leave parameters identical.
	perturbed.PerturbFrom(src, 0, rng)
	c := perturbed.Forward(x, nil)
	if mat.VecDist(a, c) != 0 {
		t.Fatal("sigma=0 perturbation changed outputs")
	}
}

func TestNumParams(t *testing.T) {
	net := newTestNet(t, Config{Sizes: []int{3, 5, 2}, AuxLayer: -1}, 14)
	// (5*3+5) + (2*5+2) = 20 + 12 = 32.
	if got := net.NumParams(); got != 32 {
		t.Fatalf("NumParams=%d, want 32", got)
	}
}

func TestMismatchedArchitecturesPanic(t *testing.T) {
	a := newTestNet(t, Config{Sizes: []int{2, 3, 1}, AuxLayer: -1}, 15)
	b := newTestNet(t, Config{Sizes: []int{2, 4, 1}, AuxLayer: -1}, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for architecture mismatch")
		}
	}()
	a.SoftUpdateFrom(b, 0.5)
}

// Property: gradient accumulation is additive — backprop of the same example
// twice yields exactly double the gradients.
func TestGradientAccumulationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net := NewNetwork(Config{Sizes: []int{3, 5, 2}, Hidden: Tanh{}, AuxLayer: -1}, rng)
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		dOut := []float64{rng.NormFloat64(), rng.NormFloat64()}
		cache := NewCache(net)
		net.ForwardCache(cache, x, nil)
		g1 := NewGrads(net)
		net.Backward(cache, dOut, g1)
		g2 := NewGrads(net)
		net.Backward(cache, dOut, g2)
		net.Backward(cache, dOut, g2)
		for l := range g1.W {
			doubled := g1.W[l].Clone()
			doubled.Scale(2)
			if !doubled.Equal(g2.W[l], 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: ClipGlobalNorm caps the global norm and preserves direction.
func TestClipGlobalNormProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net := NewNetwork(Config{Sizes: []int{2, 4, 1}, AuxLayer: -1}, rng)
		g := NewGrads(net)
		for l := range g.W {
			for i := range g.W[l].Data {
				g.W[l].Data[i] = rng.NormFloat64() * 10
			}
			for i := range g.B[l] {
				g.B[l][i] = rng.NormFloat64() * 10
			}
		}
		before := g.GlobalNorm()
		clipped := g.ClipGlobalNorm(1.0)
		after := g.GlobalNorm()
		if before > 1 {
			return clipped && math.Abs(after-1) < 1e-9
		}
		return !clipped && math.Abs(after-before) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
