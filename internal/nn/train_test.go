package nn

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

// trainRegression fits net to the given dataset with Adam for the given
// number of epochs and returns the final mean loss.
func trainRegression(net *Network, xs, ys [][]float64, epochs int, lr float64) float64 {
	opt := NewAdam(net, AdamConfig{LR: lr})
	cache := NewCache(net)
	g := NewGrads(net)
	dOut := make([]float64, net.OutDim())
	var last float64
	for e := 0; e < epochs; e++ {
		var total float64
		for i := range xs {
			g.Zero()
			pred := net.ForwardCache(cache, xs[i], nil)
			total += MSE(dOut, pred, ys[i])
			net.Backward(cache, dOut, g)
			opt.Step(g)
		}
		last = total / float64(len(xs))
	}
	return last
}

// TestAdamLearnsLinearFunction: a 1-hidden-layer net must fit y = 2x−1.
func TestAdamLearnsLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	net := NewNetwork(Config{Sizes: []int{1, 16, 1}, Hidden: Tanh{}, AuxLayer: -1}, rng)
	var xs, ys [][]float64
	for i := 0; i < 64; i++ {
		x := rng.Float64()*2 - 1
		xs = append(xs, []float64{x})
		ys = append(ys, []float64{2*x - 1})
	}
	loss := trainRegression(net, xs, ys, 400, 1e-2)
	if loss > 2e-3 {
		t.Fatalf("final loss %g too high for linear target", loss)
	}
}

// TestAdamLearnsNonlinearFunction: fit y = sin(3x) on [−1, 1].
func TestAdamLearnsNonlinearFunction(t *testing.T) {
	if testing.Short() {
		t.Skip("full nonlinear-regression convergence run; skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(22))
	net := NewNetwork(Config{Sizes: []int{1, 32, 32, 1}, Hidden: Tanh{}, AuxLayer: -1}, rng)
	var xs, ys [][]float64
	for i := 0; i < 128; i++ {
		x := rng.Float64()*2 - 1
		xs = append(xs, []float64{x})
		ys = append(ys, []float64{math.Sin(3 * x)})
	}
	loss := trainRegression(net, xs, ys, 300, 3e-3)
	if loss > 5e-3 {
		t.Fatalf("final loss %g too high for sin target", loss)
	}
}

// TestSGDMomentumLearns: SGD with momentum must also reduce loss.
func TestSGDMomentumLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	net := NewNetwork(Config{Sizes: []int{2, 8, 1}, Hidden: Tanh{}, AuxLayer: -1}, rng)
	opt := NewSGD(net, 0.05, 0.9)
	cache := NewCache(net)
	g := NewGrads(net)
	dOut := make([]float64, 1)
	sample := func() ([]float64, []float64) {
		x := []float64{rng.Float64(), rng.Float64()}
		return x, []float64{x[0] + x[1]}
	}
	var first, last float64
	for step := 0; step < 2000; step++ {
		x, y := sample()
		g.Zero()
		pred := net.ForwardCache(cache, x, nil)
		loss := MSE(dOut, pred, y)
		if step == 0 {
			first = loss
		}
		last = loss
		net.Backward(cache, dOut, g)
		opt.Step(g)
	}
	if last >= first {
		t.Fatalf("SGD momentum did not reduce loss: first %g, last %g", first, last)
	}
	if last > 0.01 {
		t.Fatalf("SGD momentum final loss %g too high", last)
	}
}

func TestMSEHandComputed(t *testing.T) {
	d := make([]float64, 2)
	loss := MSE(d, []float64{1, 3}, []float64{0, 1})
	// ½·((1² + 2²)/2) = 1.25
	if math.Abs(loss-1.25) > 1e-12 {
		t.Fatalf("MSE=%g, want 1.25", loss)
	}
	if math.Abs(d[0]-0.5) > 1e-12 || math.Abs(d[1]-1.0) > 1e-12 {
		t.Fatalf("MSE grad=%v, want [0.5 1]", d)
	}
}

func TestHuberMatchesMSEInQuadraticRegion(t *testing.T) {
	d1 := make([]float64, 2)
	d2 := make([]float64, 2)
	pred := []float64{0.1, -0.2}
	target := []float64{0, 0}
	l1 := MSE(d1, pred, target)
	l2 := HuberLoss(d2, pred, target, 10)
	if math.Abs(l1-l2) > 1e-12 {
		t.Fatalf("Huber %g != MSE %g inside quadratic region", l2, l1)
	}
}

func TestHuberLinearTails(t *testing.T) {
	d := make([]float64, 1)
	HuberLoss(d, []float64{100}, []float64{0}, 1)
	// Gradient saturates at delta/n = 1.
	if math.Abs(d[0]-1) > 1e-12 {
		t.Fatalf("Huber tail gradient %g, want 1", d[0])
	}
	HuberLoss(d, []float64{-100}, []float64{0}, 1)
	if math.Abs(d[0]+1) > 1e-12 {
		t.Fatalf("Huber tail gradient %g, want -1", d[0])
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	net := NewNetwork(Config{
		Sizes: []int{4, 8, 3}, Hidden: ReLU{}, Output: Softmax{},
		AuxLayer: -1,
	}, rng)
	path := filepath.Join(t.TempDir(), "net.json")
	if err := net.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, 0.2, 0.3, 0.4}
	a, b := net.Forward(x, nil), loaded.Forward(x, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round-trip output mismatch at %d: %g vs %g", i, a[i], b[i])
		}
	}
	if loaded.Layers[1].Act.Name() != "softmax" {
		t.Fatalf("activation not preserved: %s", loaded.Layers[1].Act.Name())
	}
}

func TestSaveLoadAuxNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	net := NewNetwork(Config{
		Sizes: []int{4, 8, 8, 1}, Hidden: Tanh{},
		AuxLayer: 1, AuxDim: 3,
	}, rng)
	path := filepath.Join(t.TempDir(), "critic.json")
	if err := net.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.AuxLayer != 1 || loaded.AuxDim != 3 {
		t.Fatalf("aux metadata lost: layer=%d dim=%d", loaded.AuxLayer, loaded.AuxDim)
	}
	x, aux := []float64{1, 2, 3, 4}, []float64{5, 6, 7}
	a, b := net.Forward(x, aux), loaded.Forward(x, aux)
	if a[0] != b[0] {
		t.Fatalf("aux round-trip mismatch: %g vs %g", a[0], b[0])
	}
}

func TestLoadRejectsCorruptData(t *testing.T) {
	var n Network
	if err := n.UnmarshalJSON([]byte(`{"layers":[{"rows":2,"cols":2,"weights":[1],"bias":[0,0],"activation":"relu"}]}`)); err == nil {
		t.Fatal("expected error for weight length mismatch")
	}
	if err := n.UnmarshalJSON([]byte(`{"layers":[]}`)); err == nil {
		t.Fatal("expected error for empty network")
	}
	if err := n.UnmarshalJSON([]byte(`{"layers":[{"rows":1,"cols":1,"weights":[1],"bias":[0],"activation":"bogus"}]}`)); err == nil {
		t.Fatal("expected error for unknown activation")
	}
}

func TestActivationByNameRoundTrip(t *testing.T) {
	for _, act := range []Activation{ReLU{}, Tanh{}, Identity{}, Sigmoid{}, Softmax{}} {
		got, err := ActivationByName(act.Name())
		if err != nil {
			t.Fatalf("%s: %v", act.Name(), err)
		}
		if got.Name() != act.Name() {
			t.Fatalf("round trip %s -> %s", act.Name(), got.Name())
		}
	}
	if _, err := ActivationByName("nope"); err == nil {
		t.Fatal("expected error for unknown name")
	}
}

// Property: Save/Load round-trips arbitrary random architectures exactly.
func TestSaveLoadArbitraryArchitectures(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		depth := 2 + rng.Intn(3)
		sizes := make([]int, depth+1)
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(12)
		}
		hiddens := []Activation{ReLU{}, Tanh{}, Sigmoid{}}
		outputs := []Activation{Identity{}, Softmax{}}
		cfg := Config{
			Sizes:    sizes,
			Hidden:   hiddens[rng.Intn(len(hiddens))],
			Output:   outputs[rng.Intn(len(outputs))],
			AuxLayer: -1,
		}
		if depth >= 2 && rng.Float64() < 0.5 {
			cfg.AuxLayer = 1
			cfg.AuxDim = 1 + rng.Intn(4)
		}
		net := NewNetwork(cfg, rng)
		path := filepath.Join(t.TempDir(), "net.json")
		if err := net.Save(path); err != nil {
			return false
		}
		loaded, err := Load(path)
		if err != nil {
			return false
		}
		x := make([]float64, net.InDim())
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		var aux []float64
		if cfg.AuxLayer >= 0 {
			aux = make([]float64, cfg.AuxDim)
			for i := range aux {
				aux[i] = rng.NormFloat64()
			}
		}
		a, b := net.Forward(x, aux), loaded.Forward(x, aux)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
