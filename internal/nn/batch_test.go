package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"miras/internal/mat"
)

// randomNet builds a random small architecture from rng: 1–3 hidden layers
// of width 1–24, random activations, and (half the time) an auxiliary
// input injected at a random layer — covering the aux-input critic shape.
func randomNet(rng *rand.Rand) (*Network, int, int) {
	inDim := 1 + rng.Intn(8)
	outDim := 1 + rng.Intn(6)
	sizes := []int{inDim}
	for l, n := 0, 1+rng.Intn(3); l < n; l++ {
		sizes = append(sizes, 1+rng.Intn(24))
	}
	sizes = append(sizes, outDim)
	hiddens := []Activation{ReLU{}, Tanh{}, Sigmoid{}}
	outputs := []Activation{Identity{}, Softmax{}, Tanh{}}
	cfg := Config{
		Sizes:    sizes,
		Hidden:   hiddens[rng.Intn(len(hiddens))],
		Output:   outputs[rng.Intn(len(outputs))],
		AuxLayer: -1,
	}
	auxDim := 0
	if rng.Intn(2) == 0 {
		cfg.AuxLayer = rng.Intn(len(sizes) - 1)
		auxDim = 1 + rng.Intn(5)
		cfg.AuxDim = auxDim
	}
	return NewNetwork(cfg, rng), inDim, auxDim
}

func maxAbsDiff(a, b []float64) float64 {
	var worst float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// TestBatchMatchesPerSample is the sequential-equivalence property: for a
// random architecture and batch, ForwardBatch row i equals ForwardCache on
// sample i, and the gradients BackwardBatch accumulates equal the sum of N
// per-sample Backward calls, all within 1e-12.
func TestBatchMatchesPerSample(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net, inDim, auxDim := randomNet(rng)
		batch := 1 + rng.Intn(9)
		outDim := net.OutDim()

		x := mat.NewRandn(batch, inDim, 1, rng)
		var aux *mat.Matrix
		if auxDim > 0 {
			aux = mat.NewRandn(batch, auxDim, 1, rng)
		}
		dOut := mat.NewRandn(batch, outDim, 1, rng)

		bc := NewBatchCache(net, batch)
		gotOut := net.ForwardBatch(bc, x, aux)
		gBatch := NewGrads(net)
		gotDX, gotDAux := net.BackwardBatch(bc, dOut, gBatch)

		cache := NewCache(net)
		gSeq := NewGrads(net)
		const tol = 1e-12
		for i := 0; i < batch; i++ {
			var auxRow []float64
			if aux != nil {
				auxRow = aux.Row(i)
			}
			wantOut := net.ForwardCache(cache, x.Row(i), auxRow)
			if maxAbsDiff(gotOut.Row(i), wantOut) > tol {
				t.Logf("seed %d: forward row %d differs", seed, i)
				return false
			}
			wantDX, wantDAux := net.Backward(cache, dOut.Row(i), gSeq)
			if maxAbsDiff(gotDX.Row(i), wantDX) > tol {
				t.Logf("seed %d: dX row %d differs", seed, i)
				return false
			}
			if auxDim > 0 && maxAbsDiff(gotDAux.Row(i), wantDAux) > tol {
				t.Logf("seed %d: dAux row %d differs", seed, i)
				return false
			}
		}
		for l := range gBatch.W {
			if maxAbsDiff(gBatch.W[l].Data, gSeq.W[l].Data) > tol {
				t.Logf("seed %d: layer %d weight grads differ", seed, l)
				return false
			}
			if maxAbsDiff(gBatch.B[l], gSeq.B[l]) > tol {
				t.Logf("seed %d: layer %d bias grads differ", seed, l)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{
		MaxCount: 60,
		Rand:     rand.New(rand.NewSource(99)),
	}); err != nil {
		t.Fatal(err)
	}
}

// TestBatchCacheReuse checks a reused BatchCache carries no state between
// passes: two identical passes give identical outputs and gradients.
func TestBatchCacheReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := NewNetwork(Config{
		Sizes: []int{4, 12, 12, 1}, Hidden: Tanh{}, Output: Identity{},
		AuxLayer: 1, AuxDim: 3,
	}, rng)
	const batch = 5
	x := mat.NewRandn(batch, 4, 1, rng)
	aux := mat.NewRandn(batch, 3, 1, rng)
	dOut := mat.NewRandn(batch, 1, 1, rng)
	bc := NewBatchCache(net, batch)

	out1 := net.ForwardBatch(bc, x, aux).Clone()
	g1 := NewGrads(net)
	net.BackwardBatch(bc, dOut, g1)

	// Pollute the cache with a different pass, then repeat the first.
	net.ForwardBatch(bc, mat.NewRandn(batch, 4, 1, rng), mat.NewRandn(batch, 3, 1, rng))
	net.BackwardBatch(bc, mat.NewRandn(batch, 1, 1, rng), NewGrads(net))

	out2 := net.ForwardBatch(bc, x, aux).Clone()
	g2 := NewGrads(net)
	net.BackwardBatch(bc, dOut, g2)

	if !out1.Equal(out2, 0) {
		t.Fatal("reused cache changed forward output")
	}
	for l := range g1.W {
		if !g1.W[l].Equal(g2.W[l], 0) {
			t.Fatalf("reused cache changed layer %d weight grads", l)
		}
	}
}

func TestBatchShapePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := NewNetwork(Config{Sizes: []int{3, 5, 2}, AuxLayer: -1}, rng)
	bc := NewBatchCache(net, 4)
	for name, fn := range map[string]func(){
		"wrong input cols": func() { net.ForwardBatch(bc, mat.New(4, 2), nil) },
		"wrong batch rows": func() { net.ForwardBatch(bc, mat.New(3, 3), nil) },
		"unexpected aux":   func() { net.ForwardBatch(bc, mat.New(4, 3), mat.New(4, 1)) },
		"wrong dOut":       func() { net.BackwardBatch(bc, mat.New(4, 3), NewGrads(net)) },
		"zero batch":       func() { NewBatchCache(net, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
