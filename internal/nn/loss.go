package nn

import "fmt"

// MSE returns the mean squared error between pred and target,
// ½·mean_i (pred_i − target_i)², and writes the gradient with respect to
// pred into dPred (which must have the same length). The ½ factor keeps the
// gradient free of a stray 2.
func MSE(dPred, pred, target []float64) float64 {
	if len(pred) != len(target) || len(dPred) != len(pred) {
		panic(fmt.Sprintf("nn: MSE length mismatch %d/%d/%d", len(dPred), len(pred), len(target)))
	}
	if len(pred) == 0 {
		return 0
	}
	invN := 1 / float64(len(pred))
	var loss float64
	for i := range pred {
		d := pred[i] - target[i]
		loss += 0.5 * d * d * invN
		dPred[i] = d * invN
	}
	return loss
}

// HuberLoss returns the Huber loss between pred and target with threshold
// delta, writing the gradient into dPred. Huber is used by the critic
// trainer as a robust alternative to MSE when TD errors are heavy-tailed.
func HuberLoss(dPred, pred, target []float64, delta float64) float64 {
	if len(pred) != len(target) || len(dPred) != len(pred) {
		panic(fmt.Sprintf("nn: Huber length mismatch %d/%d/%d", len(dPred), len(pred), len(target)))
	}
	if delta <= 0 {
		panic("nn: Huber delta must be positive")
	}
	if len(pred) == 0 {
		return 0
	}
	invN := 1 / float64(len(pred))
	var loss float64
	for i := range pred {
		d := pred[i] - target[i]
		abs := d
		if abs < 0 {
			abs = -abs
		}
		if abs <= delta {
			loss += 0.5 * d * d * invN
			dPred[i] = d * invN
		} else {
			loss += delta * (abs - 0.5*delta) * invN
			if d > 0 {
				dPred[i] = delta * invN
			} else {
				dPred[i] = -delta * invN
			}
		}
	}
	return loss
}
