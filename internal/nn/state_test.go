package nn

import (
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestAdamStateRoundTrip trains two identical networks, checkpoints one
// optimizer mid-run, restores it into a fresh optimizer, and verifies both
// produce bit-identical parameters afterwards.
func TestAdamStateRoundTrip(t *testing.T) {
	build := func() (*Network, *Adam) {
		rng := rand.New(rand.NewSource(3))
		net := NewNetwork(Config{Sizes: []int{4, 8, 2}, AuxLayer: -1}, rng)
		return net, NewAdam(net, AdamConfig{})
	}
	netA, optA := build()
	netB, optB := build()

	rng := rand.New(rand.NewSource(9))
	step := func(net *Network, opt *Adam, x []float64) {
		c := NewCache(net)
		net.ForwardCache(c, x, nil)
		g := NewGrads(net)
		dOut := []float64{0.3, -0.7}
		net.Backward(c, dOut, g)
		opt.Step(g)
	}
	inputs := make([][]float64, 20)
	for i := range inputs {
		inputs[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	for i := 0; i < 10; i++ {
		step(netA, optA, inputs[i])
		step(netB, optB, inputs[i])
	}

	// Serialize optimizer B's state through JSON (as a checkpoint would) and
	// restore into a brand-new optimizer over the same network.
	blob, err := json.Marshal(optB.State())
	if err != nil {
		t.Fatal(err)
	}
	var st AdamState
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	optB2 := NewAdam(netB, AdamConfig{})
	if err := optB2.SetState(st); err != nil {
		t.Fatal(err)
	}

	for i := 10; i < 20; i++ {
		step(netA, optA, inputs[i])
		step(netB, optB2, inputs[i])
	}
	for l := range netA.Layers {
		for i, v := range netA.Layers[l].W.Data {
			if v != netB.Layers[l].W.Data[i] {
				t.Fatalf("layer %d weight %d diverged after restore: %g != %g",
					l, i, v, netB.Layers[l].W.Data[i])
			}
		}
	}
}

func TestAdamSetStateRejectsBadState(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := NewNetwork(Config{Sizes: []int{2, 3, 1}, AuxLayer: -1}, rng)
	opt := NewAdam(net, AdamConfig{})
	good := opt.State()

	cases := map[string]func(s AdamState) AdamState{
		"negative t":    func(s AdamState) AdamState { s.T = -1; return s },
		"missing layer": func(s AdamState) AdamState { s.MW = s.MW[:1]; return s },
		"short weights": func(s AdamState) AdamState {
			s.VW = append([][]float64(nil), s.VW...)
			s.VW[0] = s.VW[0][:2]
			return s
		},
		"nan moment": func(s AdamState) AdamState {
			s.MW = append([][]float64(nil), s.MW...)
			s.MW[0] = append([]float64(nil), s.MW[0]...)
			s.MW[0][0] = math.NaN()
			return s
		},
	}
	for name, mut := range cases {
		if err := opt.SetState(mut(good)); err == nil {
			t.Errorf("%s: SetState accepted corrupt state", name)
		}
	}
	if err := opt.SetState(good); err != nil {
		t.Fatalf("valid state rejected: %v", err)
	}
}

func TestCheckFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := NewNetwork(Config{Sizes: []int{2, 3, 1}, AuxLayer: -1}, rng)
	if err := net.CheckFinite(); err != nil {
		t.Fatalf("fresh network reported non-finite: %v", err)
	}
	net.Layers[1].W.Data[0] = math.Inf(1)
	if err := net.CheckFinite(); err == nil {
		t.Fatal("Inf weight not detected")
	}
	net.Layers[1].W.Data[0] = 0
	net.Layers[0].B[1] = math.NaN()
	if err := net.CheckFinite(); err == nil {
		t.Fatal("NaN bias not detected")
	}
}

// TestLoadRejectsCorruptNetwork writes structurally broken network files
// and verifies Load fails with a clean error instead of returning a
// network that would panic or emit NaN at inference time.
func TestLoadRejectsCorruptNetwork(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"no layers":            `{"aux_layer":-1,"layers":[]}`,
		"negative dims":        `{"aux_layer":-1,"layers":[{"rows":-2,"cols":-2,"weights":[1,1,1,1],"bias":[],"activation":"relu"}]}`,
		"interlayer mismatch":  `{"aux_layer":-1,"layers":[{"rows":1,"cols":2,"weights":[1,1],"bias":[0],"activation":"identity"},{"rows":1,"cols":3,"weights":[1,1,1],"bias":[0],"activation":"identity"}]}`,
		"aux out of range":     `{"aux_layer":5,"aux_dim":1,"layers":[{"rows":1,"cols":1,"weights":[1],"bias":[0],"activation":"identity"}]}`,
		"aux dim not positive": `{"aux_layer":0,"aux_dim":0,"layers":[{"rows":1,"cols":1,"weights":[1],"bias":[0],"activation":"identity"}]}`,
		"unknown activation":   `{"aux_layer":-1,"layers":[{"rows":1,"cols":1,"weights":[1],"bias":[0],"activation":"quux"}]}`,
		"inf weight":           `{"aux_layer":-1,"layers":[{"rows":1,"cols":1,"weights":[1e999],"bias":[0],"activation":"identity"}]}`,
	}
	for name, body := range cases {
		path := filepath.Join(dir, strings.ReplaceAll(name, " ", "_")+".json")
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path); err == nil {
			t.Errorf("%s: Load accepted corrupt network", name)
		}
	}
}

// TestSaveAtomic verifies Save goes through the atomic path: saving over
// an existing file leaves no temp droppings and the content is replaced.
func TestSaveAtomic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := NewNetwork(Config{Sizes: []int{2, 2}, AuxLayer: -1}, rng)
	dir := t.TempDir()
	path := filepath.Join(dir, "net.json")
	if err := net.Save(path); err != nil {
		t.Fatal(err)
	}
	net.Layers[0].B[0] = 42
	if err := net.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Layers[0].B[0] != 42 {
		t.Fatalf("reloaded bias %g, want 42", got.Layers[0].B[0])
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries after save, want 1", len(entries))
	}
}
