package nn

import (
	"math"

	"miras/internal/mat"
)

// Optimizer applies accumulated gradients to a network's parameters.
// Implementations own per-parameter state (momenta) and must be constructed
// against the specific network they will update.
type Optimizer interface {
	// Step applies the gradients in g to the optimizer's network,
	// interpreting g as the gradient of a loss to MINIMISE.
	Step(g *Grads)
}

// Compile-time interface checks.
var (
	_ Optimizer = (*SGD)(nil)
	_ Optimizer = (*Adam)(nil)
)

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	net      *Network
	lr       float64
	momentum float64
	velocity *Grads
}

// NewSGD returns an SGD optimizer for net with the given learning rate and
// momentum coefficient (0 disables momentum).
func NewSGD(net *Network, lr, momentum float64) *SGD {
	s := &SGD{net: net, lr: lr, momentum: momentum}
	if momentum != 0 {
		s.velocity = NewGrads(net)
	}
	return s
}

// Step implements Optimizer.
func (s *SGD) Step(g *Grads) {
	for l, layer := range s.net.Layers {
		if s.velocity != nil {
			vw := s.velocity.W[l]
			vw.Scale(s.momentum)
			vw.AddScaled(g.W[l], 1)
			layer.W.AddScaled(vw, -s.lr)
			vb := s.velocity.B[l]
			for i := range vb {
				vb[i] = s.momentum*vb[i] + g.B[l][i]
				layer.B[i] -= s.lr * vb[i]
			}
		} else {
			layer.W.AddScaled(g.W[l], -s.lr)
			mat.VecAddScaled(layer.B, g.B[l], -s.lr)
		}
	}
}

// AdamConfig parameterises an Adam optimizer. Zero-valued fields take the
// conventional defaults from Kingma & Ba (2015).
type AdamConfig struct {
	// LR is the learning rate (default 1e-3).
	LR float64
	// Beta1 is the first-moment decay (default 0.9).
	Beta1 float64
	// Beta2 is the second-moment decay (default 0.999).
	Beta2 float64
	// Eps is the denominator fuzz (default 1e-8).
	Eps float64
}

func (c AdamConfig) withDefaults() AdamConfig {
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.Beta1 == 0 {
		c.Beta1 = 0.9
	}
	if c.Beta2 == 0 {
		c.Beta2 = 0.999
	}
	if c.Eps == 0 {
		c.Eps = 1e-8
	}
	return c
}

// Adam is the Adam optimizer (Kingma & Ba, 2015) with bias-corrected
// first and second moment estimates.
type Adam struct {
	net  *Network
	cfg  AdamConfig
	m, v *Grads
	t    int
}

// NewAdam returns an Adam optimizer for net.
func NewAdam(net *Network, cfg AdamConfig) *Adam {
	return &Adam{net: net, cfg: cfg.withDefaults(), m: NewGrads(net), v: NewGrads(net)}
}

// Step implements Optimizer.
func (a *Adam) Step(g *Grads) {
	a.t++
	c := a.cfg
	corr1 := 1 - math.Pow(c.Beta1, float64(a.t))
	corr2 := 1 - math.Pow(c.Beta2, float64(a.t))
	for l, layer := range a.net.Layers {
		mw, vw, gw := a.m.W[l].Data, a.v.W[l].Data, g.W[l].Data
		w := layer.W.Data
		for i, gi := range gw {
			mw[i] = c.Beta1*mw[i] + (1-c.Beta1)*gi
			vw[i] = c.Beta2*vw[i] + (1-c.Beta2)*gi*gi
			w[i] -= c.LR * (mw[i] / corr1) / (math.Sqrt(vw[i]/corr2) + c.Eps)
		}
		mb, vb, gb := a.m.B[l], a.v.B[l], g.B[l]
		for i, gi := range gb {
			mb[i] = c.Beta1*mb[i] + (1-c.Beta1)*gi
			vb[i] = c.Beta2*vb[i] + (1-c.Beta2)*gi*gi
			layer.B[i] -= c.LR * (mb[i] / corr1) / (math.Sqrt(vb[i]/corr2) + c.Eps)
		}
	}
}
