package nn

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
)

// FuzzNetworkDecode hammers the network JSON codec — the input surface of
// policy snapshots, saved models, and training checkpoints. Decoding must
// never panic; a successful decode must yield a structurally valid network
// (consistent layer widths, finite parameters) that round-trips to stable
// bytes and survives a forward pass.
func FuzzNetworkDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	plain := NewNetwork(Config{Sizes: []int{3, 4, 2}, AuxLayer: -1}, rng)
	aux := NewNetwork(Config{Sizes: []int{3, 4, 1}, AuxLayer: 1, AuxDim: 2}, rng)
	for _, n := range []*Network{plain, aux} {
		data, err := json.Marshal(n)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"aux_layer":-1,"layers":[{"rows":1,"cols":1,"weights":[0.5],"bias":[0],"activation":"identity"}]}`))
	f.Add([]byte(`{"aux_layer":-1,"layers":[{"rows":2,"cols":1,"weights":[1],"bias":[0,0],"activation":"relu"}]}`))
	f.Add([]byte(`{"aux_layer":-1,"layers":[{"rows":-1,"cols":-1,"weights":[1],"bias":[],"activation":"relu"}]}`))
	f.Add([]byte(`{"aux_layer":0,"aux_dim":3,"layers":[{"rows":1,"cols":2,"weights":[1,2],"bias":[0],"activation":"tanh"}]}`))
	f.Add([]byte(`{"aux_layer":-1,"layers":[{"rows":1,"cols":1,"weights":[1e999],"bias":[0],"activation":"identity"}]}`))
	f.Add([]byte(`{"aux_layer":-1,"layers":[{"rows":1,"cols":2,"weights":[1,1],"bias":[0],"activation":"identity"},{"rows":1,"cols":3,"weights":[1,1,1],"bias":[0],"activation":"identity"}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var n Network
		if err := json.Unmarshal(data, &n); err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("decoded network fails validation: %v\ninput: %q", err, data)
		}
		// A validated network must survive inference on a zero input.
		x := make([]float64, n.InDim())
		var auxIn []float64
		if n.AuxLayer >= 0 {
			auxIn = make([]float64, n.AuxDim)
		}
		_ = n.Forward(x, auxIn)
		out, err := json.Marshal(&n)
		if err != nil {
			t.Fatalf("re-encode failed: %v\ninput: %q", err, data)
		}
		var n2 Network
		if err := json.Unmarshal(out, &n2); err != nil {
			t.Fatalf("round-trip decode failed: %v\nencoded: %q", err, out)
		}
		out2, err := json.Marshal(&n2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("round-trip unstable:\nfirst:  %q\nsecond: %q", out, out2)
		}
	})
}
