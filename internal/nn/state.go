package nn

import (
	"fmt"
	"math"

	"miras/internal/mat"
)

// AdamState is a serializable snapshot of an Adam optimizer's mutable
// state: the step counter and the first/second moment estimates, flattened
// per layer in the network's layer order. Restoring it with SetState makes
// the optimizer continue exactly where the snapshot was taken.
type AdamState struct {
	T  int         `json:"t"`
	MW [][]float64 `json:"mw"`
	MB [][]float64 `json:"mb"`
	VW [][]float64 `json:"vw"`
	VB [][]float64 `json:"vb"`
}

// State returns a deep copy of the optimizer's mutable state.
func (a *Adam) State() AdamState {
	s := AdamState{T: a.t}
	for l := range a.net.Layers {
		s.MW = append(s.MW, mat.VecClone(a.m.W[l].Data))
		s.MB = append(s.MB, mat.VecClone(a.m.B[l]))
		s.VW = append(s.VW, mat.VecClone(a.v.W[l].Data))
		s.VB = append(s.VB, mat.VecClone(a.v.B[l]))
	}
	return s
}

// SetState restores state captured by State. It validates shapes against
// the optimizer's network and rejects non-finite moments so a corrupted
// checkpoint cannot poison subsequent updates.
func (a *Adam) SetState(s AdamState) error {
	if s.T < 0 {
		return fmt.Errorf("nn: adam state: negative step count %d", s.T)
	}
	n := len(a.net.Layers)
	if len(s.MW) != n || len(s.MB) != n || len(s.VW) != n || len(s.VB) != n {
		return fmt.Errorf("nn: adam state: %d/%d/%d/%d moment layers, network has %d",
			len(s.MW), len(s.MB), len(s.VW), len(s.VB), n)
	}
	for l, layer := range a.net.Layers {
		nw, nb := len(layer.W.Data), len(layer.B)
		if len(s.MW[l]) != nw || len(s.VW[l]) != nw {
			return fmt.Errorf("nn: adam state: layer %d weight moments %d/%d != %d",
				l, len(s.MW[l]), len(s.VW[l]), nw)
		}
		if len(s.MB[l]) != nb || len(s.VB[l]) != nb {
			return fmt.Errorf("nn: adam state: layer %d bias moments %d/%d != %d",
				l, len(s.MB[l]), len(s.VB[l]), nb)
		}
		for _, vals := range [][]float64{s.MW[l], s.MB[l], s.VW[l], s.VB[l]} {
			for _, v := range vals {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("nn: adam state: non-finite moment in layer %d", l)
				}
			}
		}
	}
	a.t = s.T
	for l := range a.net.Layers {
		copy(a.m.W[l].Data, s.MW[l])
		copy(a.m.B[l], s.MB[l])
		copy(a.v.W[l].Data, s.VW[l])
		copy(a.v.B[l], s.VB[l])
	}
	return nil
}

// CheckFinite returns an error naming the first non-finite parameter
// (NaN or ±Inf) in the network, or nil when every weight and bias is
// finite. This is the divergence probe the training guard and the
// snapshot loaders share.
func (n *Network) CheckFinite() error {
	for l, layer := range n.Layers {
		for i, v := range layer.W.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("nn: layer %d weight %d is %v", l, i, v)
			}
		}
		for i, v := range layer.B {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("nn: layer %d bias %d is %v", l, i, v)
			}
		}
	}
	return nil
}

// SameShape reports whether o has the same architecture as n (layer count,
// per-layer dimensions, aux wiring), returning a descriptive error when it
// does not. It is the non-panicking counterpart of mustMatch, for use on
// untrusted (deserialized) networks.
func (n *Network) SameShape(o *Network) error {
	if o == nil {
		return fmt.Errorf("nn: nil network")
	}
	if len(n.Layers) != len(o.Layers) {
		return fmt.Errorf("nn: layer count %d != %d", len(o.Layers), len(n.Layers))
	}
	if n.AuxLayer != o.AuxLayer || n.AuxDim != o.AuxDim {
		return fmt.Errorf("nn: aux wiring (%d,%d) != (%d,%d)", o.AuxLayer, o.AuxDim, n.AuxLayer, n.AuxDim)
	}
	for l, layer := range n.Layers {
		ol := o.Layers[l]
		if layer.InDim() != ol.InDim() || layer.OutDim() != ol.OutDim() {
			return fmt.Errorf("nn: layer %d shape %dx%d != %dx%d",
				l, ol.OutDim(), ol.InDim(), layer.OutDim(), layer.InDim())
		}
	}
	return nil
}

// Validate checks the structural integrity of a network, typically one
// just decoded from JSON: at least one layer, positive dimensions,
// consecutive layers that agree on width (accounting for the auxiliary
// input), sane aux wiring, and fully finite parameters.
func (n *Network) Validate() error {
	if len(n.Layers) == 0 {
		return fmt.Errorf("nn: network has no layers")
	}
	if n.AuxLayer < -1 || n.AuxLayer >= len(n.Layers) {
		return fmt.Errorf("nn: aux layer %d out of range for %d layers", n.AuxLayer, len(n.Layers))
	}
	if n.AuxLayer >= 0 && n.AuxDim <= 0 {
		return fmt.Errorf("nn: aux layer %d set but aux dim %d not positive", n.AuxLayer, n.AuxDim)
	}
	if n.AuxLayer < 0 && n.AuxDim != 0 {
		return fmt.Errorf("nn: aux dim %d without aux layer", n.AuxDim)
	}
	for l, layer := range n.Layers {
		if layer == nil || layer.W == nil {
			return fmt.Errorf("nn: layer %d is nil", l)
		}
		if layer.InDim() <= 0 || layer.OutDim() <= 0 {
			return fmt.Errorf("nn: layer %d has non-positive shape %dx%d", l, layer.OutDim(), layer.InDim())
		}
		if len(layer.B) != layer.OutDim() {
			return fmt.Errorf("nn: layer %d bias length %d != rows %d", l, len(layer.B), layer.OutDim())
		}
		if l == n.AuxLayer && layer.InDim() <= n.AuxDim {
			return fmt.Errorf("nn: aux layer %d input %d not wider than aux dim %d",
				l, layer.InDim(), n.AuxDim)
		}
		if l > 0 {
			want := n.Layers[l-1].OutDim()
			if l == n.AuxLayer {
				want += n.AuxDim
			}
			if layer.InDim() != want {
				return fmt.Errorf("nn: layer %d input %d != layer %d output (+aux) %d",
					l, layer.InDim(), l-1, want)
			}
		}
	}
	return n.CheckFinite()
}
