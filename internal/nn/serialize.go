package nn

import (
	"encoding/json"
	"fmt"
	"os"

	"miras/internal/checkpoint"
	"miras/internal/mat"
)

// networkJSON is the serialised form of a Network.
type networkJSON struct {
	AuxLayer int         `json:"aux_layer"`
	AuxDim   int         `json:"aux_dim"`
	Layers   []layerJSON `json:"layers"`
}

type layerJSON struct {
	Rows       int       `json:"rows"`
	Cols       int       `json:"cols"`
	Weights    []float64 `json:"weights"`
	Bias       []float64 `json:"bias"`
	Activation string    `json:"activation"`
}

// MarshalJSON implements json.Marshaler.
func (n *Network) MarshalJSON() ([]byte, error) {
	out := networkJSON{AuxLayer: n.AuxLayer, AuxDim: n.AuxDim}
	for _, layer := range n.Layers {
		out.Layers = append(out.Layers, layerJSON{
			Rows:       layer.W.Rows,
			Cols:       layer.W.Cols,
			Weights:    layer.W.Data,
			Bias:       layer.B,
			Activation: layer.Act.Name(),
		})
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (n *Network) UnmarshalJSON(data []byte) error {
	var in networkJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("nn: decode network: %w", err)
	}
	if len(in.Layers) == 0 {
		return fmt.Errorf("nn: decoded network has no layers")
	}
	layers := make([]*Dense, 0, len(in.Layers))
	for i, lj := range in.Layers {
		if lj.Rows <= 0 || lj.Cols <= 0 {
			return fmt.Errorf("nn: layer %d has non-positive shape %dx%d", i, lj.Rows, lj.Cols)
		}
		if lj.Rows*lj.Cols != len(lj.Weights) {
			return fmt.Errorf("nn: layer %d weight length %d != %dx%d", i, len(lj.Weights), lj.Rows, lj.Cols)
		}
		if lj.Rows != len(lj.Bias) {
			return fmt.Errorf("nn: layer %d bias length %d != rows %d", i, len(lj.Bias), lj.Rows)
		}
		act, err := ActivationByName(lj.Activation)
		if err != nil {
			return fmt.Errorf("nn: layer %d: %w", i, err)
		}
		layers = append(layers, &Dense{
			W:   mat.NewFromSlice(lj.Rows, lj.Cols, lj.Weights),
			B:   mat.VecClone(lj.Bias),
			Act: act,
		})
	}
	n.Layers = layers
	n.AuxLayer = in.AuxLayer
	n.AuxDim = in.AuxDim
	// Reject inconsistent architectures and non-finite parameters here so
	// no torn or hand-edited file can reach inference code, which panics on
	// shape mismatches and silently propagates NaN.
	if err := n.Validate(); err != nil {
		n.Layers = nil
		return err
	}
	return nil
}

// Save writes the network to path as JSON. The write is atomic (temp file
// + rename): a crash mid-save leaves the previous file intact instead of a
// torn one.
func (n *Network) Save(path string) error {
	data, err := json.Marshal(n)
	if err != nil {
		return fmt.Errorf("nn: marshal network: %w", err)
	}
	if err := checkpoint.WriteFileAtomic(path, data, 0o644); err != nil {
		return fmt.Errorf("nn: save network: %w", err)
	}
	return nil
}

// Load reads a network previously written by Save.
func Load(path string) (*Network, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("nn: load network: %w", err)
	}
	var n Network
	if err := json.Unmarshal(data, &n); err != nil {
		return nil, err
	}
	return &n, nil
}
