package nn

import (
	"fmt"

	"miras/internal/mat"
)

// BatchCache stores the intermediate activations of one batched forward
// pass — one matrix per layer, one row per sample — so BackwardBatch can
// compute gradients for a whole minibatch with three GEMM-shaped kernels
// per layer instead of per-sample vector work. A BatchCache is created for
// a fixed batch size and may be reused across passes through the same
// network without allocating.
type BatchCache struct {
	batch int
	// inputs[l] is the (possibly aux-extended) batch×InDim(l) input fed to
	// layer l; outputs[l] is the batch×OutDim(l) post-activation output.
	inputs  []*mat.Matrix
	outputs []*mat.Matrix
	// dPre and dIn are scratch for the pre-activation and input gradients.
	dPre []*mat.Matrix
	dIn  []*mat.Matrix
	// dGrad is scratch for the incoming output gradient.
	dGrad *mat.Matrix
	// dXSplit and dAux split the aux layer's input gradient into its
	// primary and auxiliary parts (nil when the network has no aux input).
	dXSplit *mat.Matrix
	dAux    *mat.Matrix
	// eps[l] is the reusable fused bias+activation epilogue descriptor for
	// layer l; its fields are (re)bound to the layer's parameters on every
	// ForwardBatch, so a cache works with any same-shaped network.
	eps []biasActEpilogue
	// wPack[l] is the persistent packing buffer for layer l's weight
	// matrix in BackwardBatch's input-gradient GEMM, keeping the backward
	// pass off the shared scratch pool (and allocation-free).
	wPack [][]float64
}

// biasActEpilogue is the fused GEMM epilogue: add the layer bias and apply
// the activation to each completed output row while it is cache-hot.
// Activations are applied row-wise, so elementwise activations are
// unaffected by the batching and vectorwise ones (Softmax) normalise per
// sample as they must. ApplyRow may run on kernel-pool workers; it only
// writes its own row and reads the shared bias/activation, which are
// immutable during a pass.
type biasActEpilogue struct {
	b   []float64
	act Activation
}

func (e *biasActEpilogue) ApplyRow(_ int, row []float64) {
	for j, bv := range e.b {
		row[j] += bv
	}
	e.act.Apply(row, row)
}

// NewBatchCache allocates a cache for running batches of the given size
// through network n.
func NewBatchCache(n *Network, batch int) *BatchCache {
	if batch <= 0 {
		panic(fmt.Sprintf("nn: batch size %d must be positive", batch))
	}
	c := &BatchCache{batch: batch}
	for _, layer := range n.Layers {
		c.inputs = append(c.inputs, mat.New(batch, layer.InDim()))
		c.outputs = append(c.outputs, mat.New(batch, layer.OutDim()))
		c.dPre = append(c.dPre, mat.New(batch, layer.OutDim()))
		c.dIn = append(c.dIn, mat.New(batch, layer.InDim()))
		c.wPack = append(c.wPack, make([]float64, layer.InDim()*layer.OutDim()))
	}
	c.eps = make([]biasActEpilogue, len(n.Layers))
	c.dGrad = mat.New(batch, n.OutDim())
	if n.AuxLayer >= 0 {
		split := n.Layers[n.AuxLayer].InDim() - n.AuxDim
		c.dXSplit = mat.New(batch, split)
		c.dAux = mat.New(batch, n.AuxDim)
	}
	return c
}

// Batch returns the fixed batch size the cache was built for.
func (c *BatchCache) Batch() int { return c.batch }

// Output returns the final layer's batch×OutDim output from the most
// recent ForwardBatch through this cache. The matrix aliases cache storage.
func (c *BatchCache) Output() *mat.Matrix { return c.outputs[len(c.outputs)-1] }

// ForwardBatch runs the network on a batch of inputs — x is batch×InDim,
// one sample per row, and aux (nil for networks without an auxiliary
// input) is batch×AuxDim — storing intermediates in c. Row i of the
// returned batch×OutDim matrix equals ForwardCache on row i of x and aux;
// the matrix aliases cache storage and is valid until the next pass.
func (n *Network) ForwardBatch(c *BatchCache, x, aux *mat.Matrix) *mat.Matrix {
	if x.Rows != c.batch || x.Cols != n.InDim() {
		panic(fmt.Sprintf("nn: batch input %dx%d != %dx%d", x.Rows, x.Cols, c.batch, n.InDim()))
	}
	if n.AuxLayer >= 0 {
		if aux == nil || aux.Rows != c.batch || aux.Cols != n.AuxDim {
			panic(fmt.Sprintf("nn: batch aux must be %dx%d", c.batch, n.AuxDim))
		}
	} else if aux != nil {
		panic("nn: aux input passed to network without AuxLayer")
	}
	cur := x
	for l, layer := range n.Layers {
		in := c.inputs[l]
		if l == n.AuxLayer {
			for r := 0; r < c.batch; r++ {
				row := in.Row(r)
				copy(row, cur.Row(r))
				copy(row[cur.Cols:], aux.Row(r))
			}
		} else {
			in.CopyFrom(cur)
		}
		// One fused kernel per layer: GEMM with the bias add and activation
		// applied to each output row in the epilogue, eliminating two extra
		// passes over the batch×out output matrix.
		ep := &c.eps[l]
		ep.b, ep.act = layer.B, layer.Act
		out := c.outputs[l]
		out.MulTransEpilogueTo(in, layer.W, ep)
		cur = out
	}
	return cur
}

// BackwardBatch backpropagates dOut — one row per sample, the gradient of
// the loss with respect to the batched output recorded in c — accumulating
// parameter gradients into g (not zeroed here, as with Backward). For each
// memory location the minibatch is folded in ascending sample order, so the
// accumulated gradients match batch sequential Backward calls entry for
// entry. It returns the batched gradients with respect to the primary and
// auxiliary inputs (dAux is nil without an aux input); both alias cache
// storage and are valid until the next BackwardBatch through c.
func (n *Network) BackwardBatch(c *BatchCache, dOut *mat.Matrix, g *Grads) (dX, dAux *mat.Matrix) {
	last := len(n.Layers) - 1
	if dOut.Rows != c.batch || dOut.Cols != n.Layers[last].OutDim() {
		panic(fmt.Sprintf("nn: batch dOut %dx%d != %dx%d", dOut.Rows, dOut.Cols, c.batch, n.Layers[last].OutDim()))
	}
	dCur := c.dGrad
	dCur.CopyFrom(dOut)
	for l := last; l >= 0; l-- {
		layer := n.Layers[l]
		dPre := c.dPre[l]
		for r := 0; r < c.batch; r++ {
			layer.Act.Backprop(dPre.Row(r), c.outputs[l].Row(r), dCur.Row(r))
		}
		// Parameter gradients: dW += dPreᵀ · inputs (batched rank-k
		// update), dB += column sums of dPre.
		g.W[l].AddMulATBScaled(dPre, c.inputs[l], 1)
		dPre.AddColumnSumsScaled(g.B[l], 1)
		// Input gradient: dIn = dPre · W, packing W into the cache's
		// persistent per-layer buffer (no pool traffic, no allocations).
		dIn := c.dIn[l]
		dIn.MulToBuf(dPre, layer.W, &c.wPack[l], nil)
		if l == n.AuxLayer {
			split := layer.InDim() - n.AuxDim
			for r := 0; r < c.batch; r++ {
				row := dIn.Row(r)
				copy(c.dXSplit.Row(r), row[:split])
				copy(c.dAux.Row(r), row[split:])
			}
			dAux = c.dAux
			dCur = c.dXSplit
		} else {
			dCur = dIn
		}
	}
	return dCur, dAux
}
