package nn

import (
	"fmt"
	"math"
	"math/rand"

	"miras/internal/mat"
)

// Dense is one fully connected layer: out = act(W·in + b).
type Dense struct {
	// W is the out×in weight matrix.
	W *mat.Matrix
	// B is the bias vector, one entry per output unit.
	B []float64
	// Act is the layer's activation.
	Act Activation
}

// InDim returns the layer's input dimension.
func (d *Dense) InDim() int { return d.W.Cols }

// OutDim returns the layer's output dimension.
func (d *Dense) OutDim() int { return d.W.Rows }

// Network is a multilayer perceptron with an optional auxiliary input
// injected at one layer. When AuxLayer ≥ 0, layer AuxLayer receives the
// concatenation of the previous layer's output and the auxiliary vector —
// the construction the paper uses for the DDPG critic, which takes the
// action at its second layer.
type Network struct {
	// Layers are the dense layers in forward order.
	Layers []*Dense
	// AuxLayer is the index of the layer that receives the auxiliary input
	// appended to its regular input, or -1 if the network has no auxiliary
	// input.
	AuxLayer int
	// AuxDim is the auxiliary input dimension (0 if AuxLayer < 0).
	AuxDim int
}

// Config describes a Network for construction by NewNetwork.
type Config struct {
	// Sizes lists the layer widths from input to output, e.g.
	// {8, 20, 20, 4} builds a network with two 20-unit hidden layers.
	Sizes []int
	// Hidden is the activation for every layer except the last. Defaults
	// to ReLU when nil.
	Hidden Activation
	// Output is the activation of the final layer. Defaults to Identity
	// when nil.
	Output Activation
	// AuxLayer, if ≥ 0, is the layer index that receives an auxiliary
	// input of dimension AuxDim concatenated to its regular input.
	AuxLayer int
	// AuxDim is the auxiliary input width; must be > 0 iff AuxLayer ≥ 0.
	AuxDim int
}

// NewNetwork builds a randomly initialised network. Layers with ReLU
// activations use He initialisation; all other layers use Xavier.
func NewNetwork(cfg Config, rng *rand.Rand) *Network {
	if len(cfg.Sizes) < 2 {
		panic(fmt.Sprintf("nn: need at least input and output sizes, got %v", cfg.Sizes))
	}
	hidden := cfg.Hidden
	if hidden == nil {
		hidden = ReLU{}
	}
	output := cfg.Output
	if output == nil {
		output = Identity{}
	}
	auxLayer, auxDim := cfg.AuxLayer, cfg.AuxDim
	if auxLayer < 0 {
		auxDim = 0
	}
	if auxLayer >= 0 && auxDim <= 0 {
		panic("nn: AuxLayer set but AuxDim is not positive")
	}
	nLayers := len(cfg.Sizes) - 1
	if auxLayer >= nLayers {
		panic(fmt.Sprintf("nn: AuxLayer %d out of range for %d layers", auxLayer, nLayers))
	}
	net := &Network{AuxLayer: -1}
	if auxLayer >= 0 {
		net.AuxLayer = auxLayer
		net.AuxDim = auxDim
	}
	for l := 0; l < nLayers; l++ {
		in, out := cfg.Sizes[l], cfg.Sizes[l+1]
		if l == auxLayer {
			in += auxDim
		}
		act := hidden
		if l == nLayers-1 {
			act = output
		}
		var w *mat.Matrix
		if _, isReLU := act.(ReLU); isReLU {
			w = mat.NewHe(out, in, in, rng)
		} else {
			w = mat.NewXavier(out, in, rng)
		}
		net.Layers = append(net.Layers, &Dense{W: w, B: make([]float64, out), Act: act})
	}
	return net
}

// InDim returns the primary input dimension.
func (n *Network) InDim() int {
	in := n.Layers[0].InDim()
	if n.AuxLayer == 0 {
		in -= n.AuxDim
	}
	return in
}

// OutDim returns the output dimension.
func (n *Network) OutDim() int { return n.Layers[len(n.Layers)-1].OutDim() }

// Cache stores the intermediate activations of one forward pass so Backward
// can compute gradients. A Cache may be reused across passes through the
// same network to avoid allocation.
type Cache struct {
	// inputs[l] is the (possibly aux-extended) input vector fed to layer l.
	inputs [][]float64
	// outputs[l] is the post-activation output of layer l.
	outputs [][]float64
	// dPre is scratch for the pre-activation gradient, one slice per layer.
	dPre [][]float64
	// dIn is scratch for the input gradient, one slice per layer.
	dIn [][]float64
	// dGrad is scratch for the incoming output gradient.
	dGrad []float64
}

// NewCache allocates a cache sized for network n.
func NewCache(n *Network) *Cache {
	c := &Cache{
		inputs:  make([][]float64, len(n.Layers)),
		outputs: make([][]float64, len(n.Layers)),
		dPre:    make([][]float64, len(n.Layers)),
		dIn:     make([][]float64, len(n.Layers)),
	}
	for l, layer := range n.Layers {
		c.inputs[l] = make([]float64, layer.InDim())
		c.outputs[l] = make([]float64, layer.OutDim())
		c.dPre[l] = make([]float64, layer.OutDim())
		c.dIn[l] = make([]float64, layer.InDim())
	}
	c.dGrad = make([]float64, n.OutDim())
	return c
}

// Output returns the final layer's output from the most recent forward pass
// through this cache. The slice aliases cache storage.
func (c *Cache) Output() []float64 { return c.outputs[len(c.outputs)-1] }

// Forward runs the network on x (and aux, if the network has an auxiliary
// input; pass nil otherwise) and returns the output as a fresh slice.
func (n *Network) Forward(x, aux []float64) []float64 {
	c := NewCache(n)
	n.ForwardCache(c, x, aux)
	return mat.VecClone(c.Output())
}

// ForwardCache runs the network on x (and aux) storing intermediates in c.
// The returned slice aliases the cache and is valid until the next pass.
func (n *Network) ForwardCache(c *Cache, x, aux []float64) []float64 {
	if n.AuxLayer >= 0 {
		if len(aux) != n.AuxDim {
			panic(fmt.Sprintf("nn: aux length %d != AuxDim %d", len(aux), n.AuxDim))
		}
	} else if aux != nil {
		panic("nn: aux input passed to network without AuxLayer")
	}
	cur := x
	for l, layer := range n.Layers {
		in := c.inputs[l]
		if l == n.AuxLayer {
			if len(cur)+len(aux) != layer.InDim() {
				panic(fmt.Sprintf("nn: layer %d input %d+aux %d != %d", l, len(cur), len(aux), layer.InDim()))
			}
			copy(in, cur)
			copy(in[len(cur):], aux)
		} else {
			if len(cur) != layer.InDim() {
				panic(fmt.Sprintf("nn: layer %d input length %d != %d", l, len(cur), layer.InDim()))
			}
			copy(in, cur)
		}
		out := c.outputs[l]
		layer.W.MulVecTo(out, in)
		mat.VecAddScaled(out, layer.B, 1)
		layer.Act.Apply(out, out)
		cur = out
	}
	return cur
}

// Grads accumulates parameter gradients for a Network. Layout parallels the
// network's layers.
type Grads struct {
	// W[l] accumulates the weight gradient of layer l.
	W []*mat.Matrix
	// B[l] accumulates the bias gradient of layer l.
	B [][]float64
}

// NewGrads allocates a zeroed gradient accumulator shaped like n.
func NewGrads(n *Network) *Grads {
	g := &Grads{}
	for _, layer := range n.Layers {
		g.W = append(g.W, mat.New(layer.OutDim(), layer.InDim()))
		g.B = append(g.B, make([]float64, layer.OutDim()))
	}
	return g
}

// Zero clears all accumulated gradients.
func (g *Grads) Zero() {
	for l := range g.W {
		g.W[l].Zero()
		for i := range g.B[l] {
			g.B[l][i] = 0
		}
	}
}

// Scale multiplies all accumulated gradients by s.
func (g *Grads) Scale(s float64) {
	for l := range g.W {
		g.W[l].Scale(s)
		mat.VecScale(g.B[l], s)
	}
}

// GlobalNorm returns the Euclidean norm of all gradients taken together,
// used for gradient clipping.
func (g *Grads) GlobalNorm() float64 {
	var sum float64
	for l := range g.W {
		for _, v := range g.W[l].Data {
			sum += v * v
		}
		for _, v := range g.B[l] {
			sum += v * v
		}
	}
	return math.Sqrt(sum)
}

// ClipGlobalNorm rescales the gradients so their global norm is at most
// maxNorm. It reports whether clipping occurred.
func (g *Grads) ClipGlobalNorm(maxNorm float64) bool {
	norm := g.GlobalNorm()
	if norm <= maxNorm || norm == 0 {
		return false
	}
	g.Scale(maxNorm / norm)
	return true
}

// Backward backpropagates dOut — the gradient of the loss with respect to
// the network output of the forward pass recorded in c — accumulating
// parameter gradients into g (which must be pre-allocated with NewGrads and
// is NOT zeroed here, so minibatch gradients can be summed). It returns the
// gradient with respect to the primary input x and, when the network has an
// auxiliary input, with respect to aux (nil otherwise). The returned slices
// alias cache scratch and are valid until the next Backward through c.
func (n *Network) Backward(c *Cache, dOut []float64, g *Grads) (dX, dAux []float64) {
	last := len(n.Layers) - 1
	if len(dOut) != n.Layers[last].OutDim() {
		panic(fmt.Sprintf("nn: dOut length %d != output dim %d", len(dOut), n.Layers[last].OutDim()))
	}
	dCur := c.dGrad
	copy(dCur, dOut)
	for l := last; l >= 0; l-- {
		layer := n.Layers[l]
		dPre := c.dPre[l]
		layer.Act.Backprop(dPre, c.outputs[l], dCur)
		// Parameter gradients: dW += dPre ⊗ input, dB += dPre.
		g.W[l].AddOuterScaled(dPre, c.inputs[l], 1)
		mat.VecAddScaled(g.B[l], dPre, 1)
		// Input gradient: dIn = Wᵀ · dPre.
		dIn := c.dIn[l]
		layer.W.MulVecTransTo(dIn, dPre)
		if l == n.AuxLayer {
			split := layer.InDim() - n.AuxDim
			dAux = dIn[split:]
			dIn = dIn[:split]
		}
		dCur = dIn
	}
	return dCur, dAux
}

// Clone returns a deep copy of the network (same architecture, copied
// parameters). Used to create target networks.
func (n *Network) Clone() *Network {
	out := &Network{AuxLayer: n.AuxLayer, AuxDim: n.AuxDim}
	for _, layer := range n.Layers {
		out.Layers = append(out.Layers, &Dense{
			W:   layer.W.Clone(),
			B:   mat.VecClone(layer.B),
			Act: layer.Act,
		})
	}
	return out
}

// CopyParamsFrom overwrites n's parameters with src's. Architectures must
// match.
func (n *Network) CopyParamsFrom(src *Network) {
	n.mustMatch(src)
	for l, layer := range n.Layers {
		layer.W.CopyFrom(src.Layers[l].W)
		copy(layer.B, src.Layers[l].B)
	}
}

// SoftUpdateFrom moves n's parameters toward src's by fraction tau:
// θ ← (1−τ)·θ + τ·θ_src. This is the DDPG target-network update.
func (n *Network) SoftUpdateFrom(src *Network, tau float64) {
	n.mustMatch(src)
	for l, layer := range n.Layers {
		layer.W.Scale(1 - tau)
		layer.W.AddScaled(src.Layers[l].W, tau)
		for i := range layer.B {
			layer.B[i] = (1-tau)*layer.B[i] + tau*src.Layers[l].B[i]
		}
	}
}

// PerturbFrom sets n's parameters to src's plus i.i.d. Gaussian noise with
// standard deviation sigma. This implements parameter-space exploration:
// the perturbed copy acts in the environment while src is trained.
func (n *Network) PerturbFrom(src *Network, sigma float64, rng *rand.Rand) {
	n.mustMatch(src)
	for l, layer := range n.Layers {
		srcLayer := src.Layers[l]
		for i := range layer.W.Data {
			layer.W.Data[i] = srcLayer.W.Data[i] + rng.NormFloat64()*sigma
		}
		for i := range layer.B {
			layer.B[i] = srcLayer.B[i] + rng.NormFloat64()*sigma
		}
	}
}

// NumParams returns the total number of scalar parameters.
func (n *Network) NumParams() int {
	var total int
	for _, layer := range n.Layers {
		total += len(layer.W.Data) + len(layer.B)
	}
	return total
}

func (n *Network) mustMatch(src *Network) {
	if len(n.Layers) != len(src.Layers) {
		panic(fmt.Sprintf("nn: network layer count mismatch %d vs %d", len(n.Layers), len(src.Layers)))
	}
	for l, layer := range n.Layers {
		s := src.Layers[l]
		if layer.InDim() != s.InDim() || layer.OutDim() != s.OutDim() {
			panic(fmt.Sprintf("nn: layer %d shape mismatch %dx%d vs %dx%d",
				l, layer.OutDim(), layer.InDim(), s.OutDim(), s.InDim()))
		}
	}
}
