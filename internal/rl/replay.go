// Package rl implements the reinforcement-learning machinery MIRAS builds
// on: a replay buffer, the DDPG actor–critic algorithm (Lillicrap et al.,
// 2016) over the paper's softmax action parameterisation, and the
// parameter-space exploration noise of Plappert et al. (2018) that §IV-D
// adopts because action-space noise keeps violating the consumer-budget
// constraint.
package rl

import (
	"fmt"
	"math/rand"

	"miras/internal/mat"
)

// Experience is one transition observed by the agent. Action is the
// simplex vector the actor emitted (pre-floor), so the critic learns in the
// same action space the actor outputs.
type Experience struct {
	State  []float64
	Action []float64
	Next   []float64
	Reward float64
	// Done marks the end of an episode (rollout horizon). The paper's
	// horizons are time limits rather than true terminal states, so the
	// critic still bootstraps across them; Done is kept for bookkeeping.
	Done bool
}

// ReplayBuffer is a fixed-capacity ring buffer of experiences with uniform
// sampling.
type ReplayBuffer struct {
	buf  []Experience
	next int
	full bool
}

// NewReplayBuffer returns a buffer holding at most capacity experiences.
func NewReplayBuffer(capacity int) *ReplayBuffer {
	if capacity <= 0 {
		panic(fmt.Sprintf("rl: replay capacity must be positive, got %d", capacity))
	}
	return &ReplayBuffer{buf: make([]Experience, 0, capacity)}
}

// Add stores e, copying its slices, evicting the oldest experience when
// full.
func (b *ReplayBuffer) Add(e Experience) {
	stored := Experience{
		State:  mat.VecClone(e.State),
		Action: mat.VecClone(e.Action),
		Next:   mat.VecClone(e.Next),
		Reward: e.Reward,
		Done:   e.Done,
	}
	if len(b.buf) < cap(b.buf) {
		b.buf = append(b.buf, stored)
		return
	}
	b.full = true
	b.buf[b.next] = stored
	b.next = (b.next + 1) % cap(b.buf)
}

// Len returns the number of stored experiences.
func (b *ReplayBuffer) Len() int { return len(b.buf) }

// Cap returns the buffer capacity.
func (b *ReplayBuffer) Cap() int { return cap(b.buf) }

// Sample fills batch with uniformly sampled experiences (with
// replacement). It panics on an empty buffer.
func (b *ReplayBuffer) Sample(rng *rand.Rand, batch []Experience) {
	if len(b.buf) == 0 {
		panic("rl: sampling from empty replay buffer")
	}
	for i := range batch {
		batch[i] = b.buf[rng.Intn(len(b.buf))]
	}
}
