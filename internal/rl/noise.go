package rl

import (
	"fmt"
	"math"
	"math/rand"
)

// OUNoise is Ornstein–Uhlenbeck action noise — the exploration mechanism of
// the original DDPG paper, kept here as the action-space-noise baseline for
// the ablation in §IV-D (the paper reports that adding noise to the output
// action "performs poorly" because perturbed actions violate the budget
// constraint).
type OUNoise struct {
	theta, sigma, mu float64
	state            []float64
	rng              *rand.Rand
}

// NewOUNoise returns an OU process of the given dimension:
// dx = θ(μ−x)dt + σ dW, with the conventional θ=0.15, σ as given.
func NewOUNoise(dim int, sigma float64, rng *rand.Rand) *OUNoise {
	if dim <= 0 {
		panic(fmt.Sprintf("rl: OU noise dim must be positive, got %d", dim))
	}
	return &OUNoise{theta: 0.15, sigma: sigma, mu: 0, state: make([]float64, dim), rng: rng}
}

// Sample advances the process one step and returns the noise vector (a view
// of internal state; copy if retained).
func (o *OUNoise) Sample() []float64 {
	for i := range o.state {
		o.state[i] += o.theta*(o.mu-o.state[i]) + o.sigma*o.rng.NormFloat64()
	}
	return o.state
}

// Reset zeroes the process state (between episodes).
func (o *OUNoise) Reset() {
	for i := range o.state {
		o.state[i] = 0
	}
}

// ParamNoise holds the adaptive scale of parameter-space exploration
// (Plappert et al., 2018). The perturbation's standard deviation σ is
// adjusted so that the distance it induces in action space tracks a target
// δ: too-small induced distance grows σ, too-large shrinks it.
type ParamNoise struct {
	// Sigma is the current parameter-noise standard deviation.
	Sigma float64
	// Target is δ, the desired action-space distance.
	Target float64
	// Alpha is the multiplicative adaptation factor (> 1).
	Alpha float64
}

// NewParamNoise returns an adaptive scale starting at sigma with target
// action distance delta and adaptation factor 1.01 (the reference value
// from Plappert et al.).
func NewParamNoise(sigma, delta float64) *ParamNoise {
	if sigma <= 0 || delta <= 0 {
		panic(fmt.Sprintf("rl: param noise sigma=%g delta=%g must be positive", sigma, delta))
	}
	return &ParamNoise{Sigma: sigma, Target: delta, Alpha: 1.01}
}

// Adapt updates σ from the measured action-space distance between the
// unperturbed and perturbed policies.
func (p *ParamNoise) Adapt(distance float64) {
	if math.IsNaN(distance) || math.IsInf(distance, 0) {
		return
	}
	if distance < p.Target {
		p.Sigma *= p.Alpha
	} else {
		p.Sigma /= p.Alpha
	}
}

// ActionDistance measures the RMS action-space distance between two sets of
// action vectors — the d(π, π̃) that drives adaptation.
func ActionDistance(a, b [][]float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		panic(fmt.Sprintf("rl: ActionDistance over %d vs %d action sets", len(a), len(b)))
	}
	var sum float64
	var n int
	for i := range a {
		if len(a[i]) != len(b[i]) {
			panic("rl: ActionDistance dimension mismatch")
		}
		for j := range a[i] {
			d := a[i][j] - b[i][j]
			sum += d * d
			n++
		}
	}
	return math.Sqrt(sum / float64(n))
}
