package rl

import (
	"fmt"

	"miras/internal/env"
)

// WindowedEnv adapts the real emulated cluster environment (*env.Env) to
// the Environment interface the agent trains against. Simplex actions are
// converted to integer consumer counts with the paper's floor rule — which
// guarantees the budget constraint, so Step can never fail on a valid
// simplex. Episodes end after EpisodeLen windows (the paper resets the real
// environment every 25 steps during data collection, §VI-A3).
type WindowedEnv struct {
	inner      *env.Env
	episodeLen int
	steps      int
	// clearOnReset controls whether Reset clears cluster WIP (the paper's
	// reset provisions consumers until WIP ≈ 0; our Clear is the
	// instantaneous equivalent).
	clearOnReset bool
}

// Compile-time interface check.
var _ Environment = (*WindowedEnv)(nil)

// NewWindowedEnv wraps e with the given episode length.
func NewWindowedEnv(e *env.Env, episodeLen int, clearOnReset bool) (*WindowedEnv, error) {
	if e == nil {
		return nil, fmt.Errorf("rl: env is required")
	}
	if episodeLen <= 0 {
		return nil, fmt.Errorf("rl: episode length must be positive, got %d", episodeLen)
	}
	return &WindowedEnv{inner: e, episodeLen: episodeLen, clearOnReset: clearOnReset}, nil
}

// Inner returns the wrapped environment.
func (w *WindowedEnv) Inner() *env.Env { return w.inner }

// StateDim implements Environment.
func (w *WindowedEnv) StateDim() int { return w.inner.StateDim() }

// ActionDim implements Environment. The action simplex has one share per
// microservice — narrower than the state when the environment is
// failure-aware.
func (w *WindowedEnv) ActionDim() int { return w.inner.ActionDim() }

// Reset implements Environment.
func (w *WindowedEnv) Reset() []float64 {
	w.steps = 0
	if w.clearOnReset {
		return w.inner.Reset()
	}
	return w.inner.State()
}

// Step implements Environment. A panic on Step is impossible for simplex
// actions; any residual error (programming bug) is surfaced as a panic
// because it cannot be handled meaningfully mid-training.
func (w *WindowedEnv) Step(action []float64) (next []float64, reward float64, done bool) {
	m := env.SimplexToAllocation(action, w.inner.Budget())
	res, err := w.inner.Step(m)
	if err != nil {
		panic(fmt.Sprintf("rl: real env rejected floored simplex action: %v", err))
	}
	w.steps++
	return res.State, res.Reward, w.steps >= w.episodeLen
}
