package rl

import (
	"fmt"
	"math"
	"math/rand"

	"miras/internal/mat"
	"miras/internal/nn"
	"miras/internal/obs"
	"miras/internal/sim"
)

// Environment is what the DDPG agent trains against: either the synthetic
// model-backed environment (MIRAS) or the real emulated cluster (the
// model-free baseline). Actions are points on the probability simplex.
type Environment interface {
	// Reset starts a new episode and returns the initial state.
	Reset() []float64
	// Step applies an action and returns the next state, reward, and
	// whether the episode ended.
	Step(action []float64) (next []float64, reward float64, done bool)
	// StateDim and ActionDim give the observation and action widths.
	StateDim() int
	ActionDim() int
}

// ExplorationKind selects the exploration mechanism.
type ExplorationKind int

const (
	// ParamSpaceNoise perturbs the actor's parameters with adaptive
	// Gaussian noise — the paper's choice (§IV-D): the perturbed policy's
	// softmax output is still a valid simplex, so the budget constraint
	// always holds.
	ParamSpaceNoise ExplorationKind = iota
	// ActionSpaceNoise adds OU noise to the emitted action — the original
	// DDPG scheme, kept for the ablation; perturbed actions are clamped
	// and renormalised to stay on the simplex (without which most of them
	// would violate the constraint, the paper's stated failure mode).
	ActionSpaceNoise
	// NoNoise disables exploration (pure exploitation; evaluation mode).
	NoNoise
)

// Config parameterises a DDPG agent. Zero values take the listed defaults.
type Config struct {
	// StateDim and ActionDim are the environment's dimensions. Required.
	StateDim  int
	ActionDim int
	// Hidden lists the actor's hidden-layer widths; the critic mirrors
	// them with the action injected at the second layer, as in §VI-A3.
	// Defaults to {64, 64, 64}; the paper's full-scale runs use
	// {256, 256, 256} (MSD) and {512, 512, 512} (LIGO).
	Hidden []int
	// ActorLR and CriticLR are Adam learning rates (defaults 1e-4, 1e-3).
	ActorLR  float64
	CriticLR float64
	// Gamma is the discount factor (default 0.99).
	Gamma float64
	// Tau is the target-network soft-update rate (default 0.01).
	Tau float64
	// BatchSize is the update minibatch size (default 64).
	BatchSize int
	// ReplayCapacity bounds the replay buffer (default 100000).
	ReplayCapacity int
	// RewardScale multiplies rewards before critic training; WIP-sum
	// rewards reach the hundreds during bursts, so training uses a small
	// scale (default 0.01).
	RewardScale float64
	// Exploration selects the exploration mechanism (default
	// ParamSpaceNoise, the paper's).
	Exploration ExplorationKind
	// NoiseSigma is the initial parameter-noise σ or the OU σ
	// (default 0.05).
	NoiseSigma float64
	// NoiseTargetDelta is the action-space distance target δ for adaptive
	// parameter noise (default 0.05).
	NoiseTargetDelta float64
	// EntropyBonus weights an entropy term added to the actor objective
	// (maximise Q + β·H(π(s))). The softmax actor otherwise saturates to a
	// one-hot allocation early in training and its gradients vanish —
	// starving all but one microservice permanently (default 0.01; 0.001
	// effectively disables it, negative values panic).
	EntropyBonus float64
	// HuberDelta is the critic loss transition point between quadratic and
	// linear regimes. Burst states produce rewards two orders of magnitude
	// larger than calm states; Huber keeps those targets from dominating
	// the critic fit (default 1; set very large to approximate MSE).
	HuberDelta float64
	// Seed seeds network initialisation, sampling, and noise.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Hidden == nil {
		c.Hidden = []int{64, 64, 64}
	}
	if c.ActorLR == 0 {
		c.ActorLR = 1e-4
	}
	if c.CriticLR == 0 {
		c.CriticLR = 1e-3
	}
	if c.Gamma == 0 {
		c.Gamma = 0.95
	}
	if c.Tau == 0 {
		c.Tau = 0.01
	}
	if c.BatchSize == 0 {
		c.BatchSize = 64
	}
	if c.ReplayCapacity == 0 {
		c.ReplayCapacity = 100000
	}
	if c.RewardScale == 0 {
		c.RewardScale = 0.01
	}
	if c.NoiseSigma == 0 {
		c.NoiseSigma = 0.05
	}
	if c.NoiseTargetDelta == 0 {
		c.NoiseTargetDelta = 0.05
	}
	if c.EntropyBonus == 0 {
		c.EntropyBonus = 0.05
	}
	if c.EntropyBonus < 0 {
		panic("rl: negative entropy bonus")
	}
	if c.HuberDelta == 0 {
		c.HuberDelta = 1
	}
	return c
}

// DDPG is the deep deterministic policy gradient agent with the paper's
// architecture: a softmax actor μ_Θ producing a consumer-share distribution
// and a critic Q(s, a) receiving the action at its second layer.
type DDPG struct {
	cfg Config

	actor, actorTarget   *nn.Network
	critic, criticTarget *nn.Network
	perturbed            *nn.Network

	actorOpt, criticOpt *nn.Adam
	replay              *ReplayBuffer
	// rng draws from src, a SplitMix64 source whose position is exported
	// into training checkpoints (math/rand's default source hides its
	// state, which would make resumed runs diverge).
	rng *rand.Rand
	src *sim.SplitMix

	pnoise  *ParamNoise
	ounoise *OUNoise

	norm *runningNorm

	// rawNoiseViolations counts ActionSpaceNoise samples that, before
	// simplex projection, were not valid distributions (negative entries
	// or mass ≠ 1) — i.e. the actions the paper's §IV-D calls "invalid
	// exploration". rawNoiseTotal counts all ActionSpaceNoise samples.
	rawNoiseViolations uint64
	rawNoiseTotal      uint64

	// scratch: the minibatch is staged as row-per-sample matrices and run
	// through the networks' batched path (one GEMM per layer per pass).
	batch          []Experience
	actorBC        *nn.BatchCache
	criticBC       *nn.BatchCache
	actorTargetBC  *nn.BatchCache
	criticTargetBC *nn.BatchCache
	actorGrads     *nn.Grads
	criticGrads    *nn.Grads
	bState, bNext  *mat.Matrix
	bAction, bDA   *mat.Matrix
	bDOut, bOnes   *mat.Matrix
	yBuf           []float64
	logBuf         []float64
	updates        uint64

	// lastCriticLoss and lastMeanQ record the most recent Update's outputs
	// for the divergence health check.
	lastCriticLoss float64
	lastMeanQ      float64

	rec    *obs.Recorder
	tracer *obs.Tracer
}

// NewDDPG builds an agent.
func NewDDPG(cfg Config) (*DDPG, error) {
	cfg = cfg.withDefaults()
	if cfg.StateDim <= 0 || cfg.ActionDim <= 0 {
		return nil, fmt.Errorf("rl: dims must be positive, got state=%d action=%d",
			cfg.StateDim, cfg.ActionDim)
	}
	if len(cfg.Hidden) < 2 {
		return nil, fmt.Errorf("rl: need at least 2 hidden layers for second-layer action injection, got %d",
			len(cfg.Hidden))
	}
	src := sim.NewSplitMix(uint64(cfg.Seed))
	rng := rand.New(src)

	actorSizes := append([]int{cfg.StateDim}, cfg.Hidden...)
	actorSizes = append(actorSizes, cfg.ActionDim)
	actor := nn.NewNetwork(nn.Config{
		Sizes: actorSizes, Hidden: nn.Tanh{}, Output: nn.Softmax{}, AuxLayer: -1,
	}, rng)

	criticSizes := append([]int{cfg.StateDim}, cfg.Hidden...)
	criticSizes = append(criticSizes, 1)
	critic := nn.NewNetwork(nn.Config{
		Sizes: criticSizes, Hidden: nn.Tanh{}, Output: nn.Identity{},
		AuxLayer: 1, AuxDim: cfg.ActionDim, // action enters the second layer (§VI-A3)
	}, rng)

	d := &DDPG{
		cfg:          cfg,
		actor:        actor,
		actorTarget:  actor.Clone(),
		critic:       critic,
		criticTarget: critic.Clone(),
		perturbed:    actor.Clone(),
		actorOpt:     nn.NewAdam(actor, nn.AdamConfig{LR: cfg.ActorLR}),
		criticOpt:    nn.NewAdam(critic, nn.AdamConfig{LR: cfg.CriticLR}),
		replay:       NewReplayBuffer(cfg.ReplayCapacity),
		rng:          rng,
		src:          src,
		norm:         newRunningNorm(cfg.StateDim),
		batch:        make([]Experience, cfg.BatchSize),
		logBuf:       make([]float64, cfg.StateDim),
		actorGrads:   nn.NewGrads(actor),
		criticGrads:  nn.NewGrads(critic),
	}
	// DDPG-style small uniform init on the output layers (Lillicrap et
	// al. use ±3e-3): the actor starts near the uniform simplex instead of
	// a saturated softmax, and the critic starts near zero value.
	smallFinalLayer(actor, rng)
	smallFinalLayer(critic, rng)
	d.actorTarget.CopyParamsFrom(actor)
	d.criticTarget.CopyParamsFrom(critic)
	d.perturbed.CopyParamsFrom(actor)
	d.actorBC = nn.NewBatchCache(d.actor, cfg.BatchSize)
	d.criticBC = nn.NewBatchCache(d.critic, cfg.BatchSize)
	d.actorTargetBC = nn.NewBatchCache(d.actorTarget, cfg.BatchSize)
	d.criticTargetBC = nn.NewBatchCache(d.criticTarget, cfg.BatchSize)
	d.bState = mat.New(cfg.BatchSize, cfg.StateDim)
	d.bNext = mat.New(cfg.BatchSize, cfg.StateDim)
	d.bAction = mat.New(cfg.BatchSize, cfg.ActionDim)
	d.bDA = mat.New(cfg.BatchSize, cfg.ActionDim)
	d.bDOut = mat.New(cfg.BatchSize, 1)
	d.bOnes = mat.New(cfg.BatchSize, 1)
	d.bOnes.Fill(1)
	d.yBuf = make([]float64, 1)
	switch cfg.Exploration {
	case ParamSpaceNoise:
		d.pnoise = NewParamNoise(cfg.NoiseSigma, cfg.NoiseTargetDelta)
		d.perturbed.PerturbFrom(d.actor, d.pnoise.Sigma, rng)
	case ActionSpaceNoise:
		d.ounoise = NewOUNoise(cfg.ActionDim, cfg.NoiseSigma, rng)
	case NoNoise:
	default:
		return nil, fmt.Errorf("rl: unknown exploration kind %d", cfg.Exploration)
	}
	return d, nil
}

// Config returns the resolved configuration.
func (d *DDPG) Config() Config { return d.cfg }

// SetRecorder attaches a telemetry recorder; each minibatch update then
// emits a debug event. A nil recorder keeps Update allocation-free.
func (d *DDPG) SetRecorder(r *obs.Recorder) { d.rec = r }

// SetTracer attaches a span tracer; each minibatch update then emits one
// debug-granularity "ddpg.update" span (only when the tracer was built with
// Debug). A nil tracer keeps Update allocation-free.
func (d *DDPG) SetTracer(t *obs.Tracer) { d.tracer = t }

// ReplayLen returns the number of stored experiences.
func (d *DDPG) ReplayLen() int { return d.replay.Len() }

// NoiseSigma returns the current parameter-noise σ (0 when not using
// parameter noise).
func (d *DDPG) NoiseSigma() float64 {
	if d.pnoise == nil {
		return 0
	}
	return d.pnoise.Sigma
}

// Act returns the deterministic policy action μ_Θ(s) — a simplex vector.
func (d *DDPG) Act(state []float64) []float64 {
	return d.actor.Forward(d.normalize(state), nil)
}

// ActExplore returns an exploratory action according to the configured
// mechanism. The result is always a valid simplex (non-negative, sums
// to 1).
func (d *DDPG) ActExplore(state []float64) []float64 {
	ns := d.normalize(state)
	switch d.cfg.Exploration {
	case ParamSpaceNoise:
		return d.perturbed.Forward(ns, nil)
	case ActionSpaceNoise:
		a := d.actor.Forward(ns, nil)
		noise := d.ounoise.Sample()
		violated := false
		var sum float64
		for i := range a {
			a[i] += noise[i]
			if a[i] < 0 {
				violated = true
			}
			sum += a[i]
		}
		if sum > 1+1e-9 {
			violated = true
		}
		d.rawNoiseTotal++
		if violated {
			d.rawNoiseViolations++
		}
		projectSimplex(a)
		return a
	default:
		return d.actor.Forward(ns, nil)
	}
}

// BeginEpisode re-perturbs the exploration policy (parameter noise is
// resampled per episode, per Plappert et al.) and adapts σ from the
// measured action distance on recent states.
func (d *DDPG) BeginEpisode() {
	switch d.cfg.Exploration {
	case ParamSpaceNoise:
		d.adaptParamNoise()
		d.perturbed.PerturbFrom(d.actor, d.pnoise.Sigma, d.rng)
	case ActionSpaceNoise:
		d.ounoise.Reset()
	}
}

// adaptParamNoise measures d(π, π̃) on a replay minibatch and adjusts σ.
func (d *DDPG) adaptParamNoise() {
	if d.replay.Len() == 0 {
		return
	}
	n := d.cfg.BatchSize
	if n > d.replay.Len() {
		n = d.replay.Len()
	}
	sample := make([]Experience, n)
	d.replay.Sample(d.rng, sample)
	plain := make([][]float64, n)
	noisy := make([][]float64, n)
	for i, e := range sample {
		ns := d.normalize(e.State)
		plain[i] = d.actor.Forward(ns, nil)
		noisy[i] = d.perturbed.Forward(ns, nil)
	}
	d.pnoise.Adapt(ActionDistance(plain, noisy))
}

// Observe stores a transition in the replay buffer and updates state
// normalisation statistics.
func (d *DDPG) Observe(e Experience) {
	d.norm.update(logCompress(d.logBuf, e.State))
	d.replay.Add(e)
}

// Update performs one minibatch DDPG update (critic TD regression, actor
// policy-gradient ascent, target soft updates) and returns the critic loss
// and the mean Q-value of the actor's actions (the ascent objective). It
// is a no-op returning zeros until the replay buffer holds one batch.
//
// The whole minibatch runs through the networks' batched path: every
// forward and backward below is one GEMM-shaped pass over a row-per-sample
// matrix, and all staging buffers are preallocated, so the steady-state
// update loop is allocation-free.
func (d *DDPG) Update() (criticLoss, meanQ float64) {
	if d.replay.Len() < d.cfg.BatchSize {
		return 0, 0
	}
	updateSpan := d.tracer.StartDebug("ddpg.update")
	d.replay.Sample(d.rng, d.batch)
	cfg := d.cfg
	invB := 1 / float64(len(d.batch))

	// Stage the normalised states, next states, and stored actions as
	// batch matrices. The normalizer reuses one buffer, so each result is
	// copied out before the next call.
	for i, e := range d.batch {
		copy(d.bNext.Row(i), d.normalize(e.Next))
		copy(d.bState.Row(i), d.normalize(e.State))
		copy(d.bAction.Row(i), e.Action)
	}

	// ---- Critic update: minimise (Q(s,a) − y)² with
	// y = r·scale + γ·Q'(s', μ'(s')).
	targetAction := d.actorTarget.ForwardBatch(d.actorTargetBC, d.bNext, nil)
	nextQ := d.criticTarget.ForwardBatch(d.criticTargetBC, d.bNext, targetAction)
	q := d.critic.ForwardBatch(d.criticBC, d.bState, d.bAction)
	var loss float64
	for i, e := range d.batch {
		d.yBuf[0] = e.Reward*cfg.RewardScale + cfg.Gamma*nextQ.Row(i)[0]
		loss += nn.HuberLoss(d.bDOut.Row(i), q.Row(i), d.yBuf, cfg.HuberDelta)
	}
	d.criticGrads.Zero()
	d.critic.BackwardBatch(d.criticBC, d.bDOut, d.criticGrads)
	d.criticGrads.Scale(invB)
	d.criticGrads.ClipGlobalNorm(5)
	d.criticOpt.Step(d.criticGrads)
	criticLoss = loss * invB

	// ---- Actor update: ascend ∇_Θ μ_Θ(s) · ∇_a Q(s, a)|_{a=μ(s)}.
	action := d.actor.ForwardBatch(d.actorBC, d.bState, nil)
	actorQ := d.critic.ForwardBatch(d.criticBC, d.bState, action)
	var qSum float64
	for i := 0; i < actorQ.Rows; i++ {
		qSum += actorQ.Row(i)[0]
	}
	// ∂Q/∂a via the critic's aux-input gradient; critic params get
	// throwaway gradients (criticGrads is scratch here, zeroed before its
	// next real use above).
	d.criticGrads.Zero()
	_, dAction := d.critic.BackwardBatch(d.criticBC, d.bOnes, d.criticGrads)
	// Minimise −(Q + β·H(π)) ⇒ dOut_i = (−∂Q/∂a_i + β(log a_i + 1))/N.
	// The entropy term's gradient ∂H/∂a_i = −(log a_i + 1).
	//
	// ∂Q/∂a is normalised to unit L2 per sample before use: the critic
	// restricted to the simplex is close to linear, so its raw action
	// gradient points at a vertex with unbounded magnitude, saturating
	// the softmax long before the critic's value estimates are
	// trustworthy. Direction-only ascent (cf. the inverting-gradients
	// treatment of bounded action spaces) keeps the entropy term
	// commensurate at every Q scale.
	for i := 0; i < d.bDA.Rows; i++ {
		dA := d.bDA.Row(i)
		copy(dA, dAction.Row(i))
		if n := mat.VecNorm(dA); n > 1 {
			mat.VecScale(dA, 1/n)
		}
		mat.VecScale(dA, -1)
		if cfg.EntropyBonus > 0 {
			for j, aj := range action.Row(i) {
				if aj < 1e-8 {
					aj = 1e-8
				}
				dA[j] += cfg.EntropyBonus * (math.Log(aj) + 1)
			}
		}
		mat.VecScale(dA, invB)
	}
	d.actorGrads.Zero()
	d.actor.BackwardBatch(d.actorBC, d.bDA, d.actorGrads)
	d.actorGrads.ClipGlobalNorm(5)
	d.actorOpt.Step(d.actorGrads)
	meanQ = qSum * invB

	// ---- Target soft updates.
	d.actorTarget.SoftUpdateFrom(d.actor, cfg.Tau)
	d.criticTarget.SoftUpdateFrom(d.critic, cfg.Tau)
	d.updates++
	d.lastCriticLoss, d.lastMeanQ = criticLoss, meanQ
	d.rec.Debug("ddpg_update").
		Uint("update", d.updates).
		F64("critic_loss", criticLoss).
		F64("mean_q", meanQ).
		Int("replay", d.replay.Len()).
		F64("sigma", d.NoiseSigma()).
		Emit()
	updateSpan.Uint("update", d.updates).F64("critic_loss", criticLoss).End()
	return criticLoss, meanQ
}

// Updates returns the number of completed minibatch updates.
func (d *DDPG) Updates() uint64 { return d.updates }

// RawNoiseViolations reports how many ActionSpaceNoise exploration samples
// were invalid before projection, out of how many drawn — quantifying the
// §IV-D "invalid exploration" failure mode that parameter-space noise
// avoids by construction.
func (d *DDPG) RawNoiseViolations() (violations, total uint64) {
	return d.rawNoiseViolations, d.rawNoiseTotal
}

// Actor returns the current deterministic policy network.
func (d *DDPG) Actor() *nn.Network { return d.actor }

// Critic returns the current value network. Exposed for the training
// guard's health probes (and their tests, which poison it deliberately).
func (d *DDPG) Critic() *nn.Network { return d.critic }

// RestoreActorParams overwrites the policy (and its target and perturbed
// copies) with src's parameters. The MIRAS agent uses it to roll back to
// the best-evaluating policy at the end of training.
func (d *DDPG) RestoreActorParams(src *nn.Network) {
	d.actor.CopyParamsFrom(src)
	d.actorTarget.CopyParamsFrom(src)
	d.perturbed.CopyParamsFrom(src)
}

// normalize returns the state standardised by the running statistics.
// States pass through log1p first: WIP coordinates span four orders of
// magnitude between idle and burst conditions, and a linear standardiser
// would leave the calm regime with no resolution.
func (d *DDPG) normalize(state []float64) []float64 {
	return d.norm.apply(logCompress(d.logBuf, state))
}

// logCompress writes log(1+x) per coordinate into dst (clamping negatives
// to 0) and returns dst.
func logCompress(dst, x []float64) []float64 {
	for i, v := range x {
		if v < 0 {
			v = 0
		}
		dst[i] = math.Log1p(v)
	}
	return dst
}

// smallFinalLayer reinitialises a network's output layer with uniform
// ±3e-3 weights and zero bias.
func smallFinalLayer(n *nn.Network, rng *rand.Rand) {
	last := n.Layers[len(n.Layers)-1]
	for i := range last.W.Data {
		last.W.Data[i] = (rng.Float64()*2 - 1) * 3e-3
	}
	for i := range last.B {
		last.B[i] = 0
	}
}

// projectSimplex clamps negatives to zero and renormalises so the vector is
// a valid categorical distribution; a degenerate all-zero vector becomes
// uniform.
func projectSimplex(a []float64) {
	var sum float64
	for i, v := range a {
		if v < 0 {
			a[i] = 0
		} else {
			sum += v
		}
	}
	if sum <= 0 {
		for i := range a {
			a[i] = 1 / float64(len(a))
		}
		return
	}
	mat.VecScale(a, 1/sum)
}

// runningNorm keeps Welford running mean/variance per state coordinate.
type runningNorm struct {
	count float64
	mean  []float64
	m2    []float64
	buf   []float64
}

func newRunningNorm(dim int) *runningNorm {
	return &runningNorm{
		mean: make([]float64, dim),
		m2:   make([]float64, dim),
		buf:  make([]float64, dim),
	}
}

func (r *runningNorm) update(x []float64) {
	r.count++
	for i, v := range x {
		delta := v - r.mean[i]
		r.mean[i] += delta / r.count
		r.m2[i] += delta * (v - r.mean[i])
	}
}

// apply returns the standardised vector, reusing an internal buffer (valid
// until the next call).
func (r *runningNorm) apply(x []float64) []float64 {
	if r.count < 2 {
		copy(r.buf, x)
		return r.buf
	}
	for i, v := range x {
		std := math.Sqrt(r.m2[i] / r.count)
		if std < 1e-6 {
			std = 1
		}
		r.buf[i] = (v - r.mean[i]) / std
	}
	return r.buf
}
