package rl

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func trainedAgentForSnapshot(t *testing.T) *DDPG {
	t.Helper()
	d, err := NewDDPG(Config{StateDim: 3, ActionDim: 3, Hidden: []int{12, 12}, BatchSize: 8, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(62))
	for i := 0; i < 50; i++ {
		s := []float64{rng.Float64() * 100, rng.Float64() * 10, rng.Float64()}
		d.Observe(Experience{State: s, Action: d.Act(s), Next: s, Reward: -rng.Float64()})
		d.Update()
	}
	return d
}

func TestSnapshotActMatchesLiveAgent(t *testing.T) {
	d := trainedAgentForSnapshot(t)
	snap := d.Snapshot()
	states := [][]float64{
		{0, 0, 0},
		{50, 5, 0.5},
		{1000, 100, 10},
	}
	for _, s := range states {
		live := d.Act(s)
		frozen := snap.Act(s)
		for i := range live {
			if live[i] != frozen[i] {
				t.Fatalf("snapshot diverges from live agent at %v: %v vs %v", s, frozen, live)
			}
		}
	}
}

func TestSnapshotIsFrozen(t *testing.T) {
	d := trainedAgentForSnapshot(t)
	snap := d.Snapshot()
	before := snap.Act([]float64{10, 10, 10})
	// Further training must not affect the snapshot.
	rng := rand.New(rand.NewSource(63))
	for i := 0; i < 30; i++ {
		s := []float64{rng.Float64() * 100, rng.Float64(), rng.Float64()}
		d.Observe(Experience{State: s, Action: d.Act(s), Next: s, Reward: -1})
		d.Update()
	}
	after := snap.Act([]float64{10, 10, 10})
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("snapshot changed when the live agent trained")
		}
	}
}

func TestSnapshotSaveLoadRoundTrip(t *testing.T) {
	d := trainedAgentForSnapshot(t)
	snap := d.Snapshot()
	path := filepath.Join(t.TempDir(), "policy.json")
	if err := snap.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPolicySnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	s := []float64{42, 7, 0.1}
	a, b := snap.Act(s), loaded.Act(s)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round-trip mismatch: %v vs %v", a, b)
		}
	}
}

func TestLoadPolicySnapshotRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadPolicySnapshot(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("expected error for missing file")
	}
	bad := filepath.Join(dir, "bad.json")
	write := func(content string) {
		t.Helper()
		if err := writeFile(bad, content); err != nil {
			t.Fatal(err)
		}
	}
	write("{not json")
	if _, err := LoadPolicySnapshot(bad); err == nil {
		t.Fatal("expected error for invalid JSON")
	}
	write(`{"actor":null}`)
	if _, err := LoadPolicySnapshot(bad); err == nil {
		t.Fatal("expected error for missing actor")
	}
	// Normaliser width mismatch.
	d := trainedAgentForSnapshot(t)
	snap := d.Snapshot()
	snap.NormMean = snap.NormMean[:1]
	good := filepath.Join(dir, "mismatch.json")
	if err := snap.Save(good); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPolicySnapshot(good); err == nil {
		t.Fatal("expected error for normaliser width mismatch")
	}
}

func TestSnapshotActPanicsOnWrongWidth(t *testing.T) {
	d := trainedAgentForSnapshot(t)
	snap := d.Snapshot()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	snap.Act([]float64{1})
}

// writeFile is a test helper around os.WriteFile.
func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// TestActToMatchesActZeroAlloc checks the scratch-based serving path is
// bit-identical to Act and allocation-free once the scratch is warm.
func TestActToMatchesActZeroAlloc(t *testing.T) {
	d := trainedAgentForSnapshot(t)
	snap := d.Snapshot()
	sc := snap.NewScratch()
	states := [][]float64{
		{0, 0, 0},
		{50, 5, 0.5},
		{1000, 100, 10},
	}
	for _, s := range states {
		want := snap.Act(s)
		got := snap.ActTo(sc, s)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("ActTo diverges from Act at %v: %v vs %v", s, got, want)
			}
		}
	}
	state := states[1]
	if allocs := testing.AllocsPerRun(100, func() { snap.ActTo(sc, state) }); allocs != 0 {
		t.Fatalf("ActTo: %v allocs/run, want 0", allocs)
	}
}
