package rl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"miras/internal/mat"
)

func TestReplayBufferBasics(t *testing.T) {
	b := NewReplayBuffer(3)
	if b.Len() != 0 || b.Cap() != 3 {
		t.Fatal("fresh buffer wrong")
	}
	for i := 0; i < 5; i++ {
		b.Add(Experience{State: []float64{float64(i)}, Action: []float64{1}, Next: []float64{0}, Reward: float64(i)})
	}
	if b.Len() != 3 {
		t.Fatalf("Len=%d after overflow, want 3", b.Len())
	}
	// The oldest entries (0, 1) must have been evicted.
	rng := rand.New(rand.NewSource(1))
	batch := make([]Experience, 100)
	b.Sample(rng, batch)
	for _, e := range batch {
		if e.Reward < 2 {
			t.Fatalf("evicted experience sampled: reward %g", e.Reward)
		}
	}
}

func TestReplayBufferCopies(t *testing.T) {
	b := NewReplayBuffer(2)
	s := []float64{1}
	b.Add(Experience{State: s, Action: []float64{1}, Next: []float64{2}})
	s[0] = 99
	batch := make([]Experience, 1)
	b.Sample(rand.New(rand.NewSource(2)), batch)
	if batch[0].State[0] != 1 {
		t.Fatal("replay aliased caller slice")
	}
}

func TestReplayBufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero capacity")
		}
	}()
	NewReplayBuffer(0)
}

func TestReplaySampleEmptyPanics(t *testing.T) {
	b := NewReplayBuffer(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty sample")
		}
	}()
	b.Sample(rand.New(rand.NewSource(3)), make([]Experience, 1))
}

func TestOUNoiseMeanReverts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	o := NewOUNoise(2, 0.2, rng)
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		s := o.Sample()
		sum += s[0]
	}
	if math.Abs(sum/float64(n)) > 0.1 {
		t.Fatalf("OU mean %g not near 0", sum/float64(n))
	}
	o.Reset()
	for _, v := range o.state {
		if v != 0 {
			t.Fatal("Reset did not zero state")
		}
	}
}

func TestParamNoiseAdaptation(t *testing.T) {
	p := NewParamNoise(0.1, 0.2)
	p.Adapt(0.05) // induced distance below target: grow
	if p.Sigma <= 0.1 {
		t.Fatalf("sigma %g should have grown", p.Sigma)
	}
	prev := p.Sigma
	p.Adapt(0.5) // above target: shrink
	if p.Sigma >= prev {
		t.Fatalf("sigma %g should have shrunk from %g", p.Sigma, prev)
	}
	// NaN/Inf distances are ignored.
	prev = p.Sigma
	p.Adapt(math.NaN())
	p.Adapt(math.Inf(1))
	if p.Sigma != prev {
		t.Fatal("sigma changed on NaN/Inf distance")
	}
}

func TestActionDistance(t *testing.T) {
	a := [][]float64{{0, 0}, {1, 1}}
	b := [][]float64{{0, 0}, {1, 1}}
	if got := ActionDistance(a, b); got != 0 {
		t.Fatalf("identical actions distance %g", got)
	}
	c := [][]float64{{1, 0}, {1, 1}}
	want := math.Sqrt(1.0 / 4)
	if got := ActionDistance(a, c); math.Abs(got-want) > 1e-12 {
		t.Fatalf("distance %g, want %g", got, want)
	}
}

func TestNewDDPGValidation(t *testing.T) {
	if _, err := NewDDPG(Config{StateDim: 0, ActionDim: 2}); err == nil {
		t.Fatal("expected error for zero state dim")
	}
	if _, err := NewDDPG(Config{StateDim: 2, ActionDim: 2, Hidden: []int{8}}); err == nil {
		t.Fatal("expected error for single hidden layer")
	}
	if _, err := NewDDPG(Config{StateDim: 2, ActionDim: 2, Exploration: ExplorationKind(99)}); err == nil {
		t.Fatal("expected error for unknown exploration")
	}
}

func TestActReturnsSimplex(t *testing.T) {
	d, err := NewDDPG(Config{StateDim: 3, ActionDim: 3, Hidden: []int{16, 16}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	a := d.Act([]float64{1, 2, 3})
	var sum float64
	for _, v := range a {
		if v < 0 {
			t.Fatalf("negative action entry: %v", a)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("action sums to %g", sum)
	}
}

// Property: exploratory actions remain valid simplexes for every
// exploration mechanism — the constraint-satisfaction claim of §IV-D.
func TestActExploreAlwaysSimplex(t *testing.T) {
	for _, kind := range []ExplorationKind{ParamSpaceNoise, ActionSpaceNoise, NoNoise} {
		kind := kind
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			d, err := NewDDPG(Config{
				StateDim: 4, ActionDim: 4, Hidden: []int{12, 12},
				Exploration: kind, NoiseSigma: 0.3, Seed: seed,
			})
			if err != nil {
				return false
			}
			for i := 0; i < 5; i++ {
				state := []float64{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
				d.Observe(Experience{State: state, Action: d.Act(state), Next: state, Reward: -1})
				a := d.ActExplore(state)
				var sum float64
				for _, v := range a {
					if v < -1e-12 {
						return false
					}
					sum += v
				}
				if math.Abs(sum-1) > 1e-9 {
					return false
				}
				d.BeginEpisode()
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
			t.Fatalf("exploration kind %d: %v", kind, err)
		}
	}
}

func TestParamNoiseExplorationDiffersFromMean(t *testing.T) {
	d, err := NewDDPG(Config{
		StateDim: 3, ActionDim: 3, Hidden: []int{16, 16},
		Exploration: ParamSpaceNoise, NoiseSigma: 0.5, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	state := []float64{5, 5, 5}
	plain := d.Act(state)
	noisy := d.ActExplore(state)
	if mat.VecDist(plain, noisy) == 0 {
		t.Fatal("perturbed policy identical to plain policy at sigma 0.5")
	}
}

func TestUpdateNoopUntilBatchAvailable(t *testing.T) {
	d, err := NewDDPG(Config{StateDim: 2, ActionDim: 2, Hidden: []int{8, 8}, BatchSize: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if l, q := d.Update(); l != 0 || q != 0 {
		t.Fatal("Update on empty replay did something")
	}
	if d.Updates() != 0 {
		t.Fatal("update counter advanced")
	}
}

// toyEnv is a 1-ish-dimensional allocation game: WIP dimension 0 grows by 5
// per step and is drained proportionally to the share allocated to it;
// dimension 1 receives nothing. The optimal policy pushes all share to
// dimension 0.
type toyEnv struct {
	state []float64
	steps int
	rng   *rand.Rand
}

func (e *toyEnv) Reset() []float64 {
	e.state = []float64{e.rng.Float64() * 20, e.rng.Float64() * 5}
	e.steps = 0
	return mat.VecClone(e.state)
}

func (e *toyEnv) Step(a []float64) ([]float64, float64, bool) {
	drain0 := 10 * a[0]
	drain1 := 10 * a[1]
	e.state[0] = math.Max(0, e.state[0]+5-drain0)
	e.state[1] = math.Max(0, e.state[1]+0.5-drain1)
	e.steps++
	next := mat.VecClone(e.state)
	return next, 1 - (next[0] + next[1]), e.steps >= 10
}

func (e *toyEnv) StateDim() int  { return 2 }
func (e *toyEnv) ActionDim() int { return 2 }

// TestDDPGLearnsToyAllocation: after training, the policy should allocate
// most of the share to the loaded dimension and achieve clearly better
// return than the uniform policy.
func TestDDPGLearnsToyAllocation(t *testing.T) {
	if testing.Short() {
		t.Skip("full DDPG convergence run; skipped in -short mode")
	}
	envRng := rand.New(rand.NewSource(8))
	te := &toyEnv{rng: envRng}
	d, err := NewDDPG(Config{
		StateDim: 2, ActionDim: 2, Hidden: []int{32, 32},
		ActorLR: 3e-4, CriticLR: 3e-3, BatchSize: 32, RewardScale: 0.05,
		Exploration: ParamSpaceNoise, NoiseSigma: 0.2, NoiseTargetDelta: 0.1,
		Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	episodeReturn := func(explore bool) float64 {
		s := te.Reset()
		var total float64
		for {
			var a []float64
			if explore {
				a = d.ActExplore(s)
			} else {
				a = d.Act(s)
			}
			next, r, done := te.Step(a)
			if explore {
				d.Observe(Experience{State: s, Action: a, Next: next, Reward: r, Done: done})
				d.Update()
			}
			total += r
			s = next
			if done {
				return total
			}
		}
	}
	for ep := 0; ep < 120; ep++ {
		d.BeginEpisode()
		episodeReturn(true)
	}
	// Evaluate.
	var trained float64
	for ep := 0; ep < 10; ep++ {
		trained += episodeReturn(false)
	}
	trained /= 10
	// The trained policy must put most share on the loaded dimension.
	a := d.Act([]float64{20, 1})
	if a[0] < 0.6 {
		t.Fatalf("trained policy allocates %.2f to loaded dim, want > 0.6", a[0])
	}
	if trained < -150 {
		t.Fatalf("trained return %.1f implausibly poor", trained)
	}
}

func TestDDPGDeterministicGivenSeed(t *testing.T) {
	build := func() []float64 {
		d, err := NewDDPG(Config{StateDim: 2, ActionDim: 2, Hidden: []int{8, 8}, Seed: 10})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			s := []float64{float64(i % 7), float64(i % 3)}
			d.Observe(Experience{State: s, Action: d.Act(s), Next: s, Reward: -1})
		}
		d.Update()
		return d.Act([]float64{1, 2})
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different agents")
		}
	}
}

func TestProjectSimplex(t *testing.T) {
	a := []float64{-0.5, 0.5, 1.0}
	projectSimplex(a)
	if a[0] != 0 || math.Abs(a[1]-1.0/3) > 1e-12 || math.Abs(a[2]-2.0/3) > 1e-12 {
		t.Fatalf("projection=%v", a)
	}
	z := []float64{-1, -2}
	projectSimplex(z)
	if z[0] != 0.5 || z[1] != 0.5 {
		t.Fatalf("degenerate projection=%v, want uniform", z)
	}
}

func TestRunningNorm(t *testing.T) {
	r := newRunningNorm(1)
	// Before two samples, apply is identity.
	out := r.apply([]float64{5})
	if out[0] != 5 {
		t.Fatalf("early apply=%v", out)
	}
	for i := 0; i < 1000; i++ {
		r.update([]float64{10 + float64(i%5)}) // mean 12, bounded variance
	}
	out = r.apply([]float64{12})
	if math.Abs(out[0]) > 0.1 {
		t.Fatalf("normalised mean input=%g, want ≈0", out[0])
	}
	// Constant coordinate: std floor prevents division blow-up.
	rc := newRunningNorm(1)
	rc.update([]float64{3})
	rc.update([]float64{3})
	out = rc.apply([]float64{4})
	if math.IsNaN(out[0]) || math.IsInf(out[0], 0) {
		t.Fatalf("constant coordinate produced %v", out)
	}
}

func TestRawNoiseViolationCounting(t *testing.T) {
	d, err := NewDDPG(Config{
		StateDim: 3, ActionDim: 3, Hidden: []int{12, 12},
		Exploration: ActionSpaceNoise, NoiseSigma: 0.5, Seed: 90,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		d.ActExplore([]float64{1, 2, 3})
	}
	violations, total := d.RawNoiseViolations()
	if total != 200 {
		t.Fatalf("total=%d, want 200", total)
	}
	// With sigma 0.5 OU noise on a simplex, most raw samples violate.
	if violations == 0 {
		t.Fatal("no raw violations counted at sigma 0.5 — §IV-D failure mode not observable")
	}
	// Parameter noise never counts violations.
	p, err := NewDDPG(Config{
		StateDim: 3, ActionDim: 3, Hidden: []int{12, 12},
		Exploration: ParamSpaceNoise, Seed: 91,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		p.ActExplore([]float64{1, 2, 3})
	}
	if v, _ := p.RawNoiseViolations(); v != 0 {
		t.Fatalf("param noise counted %d violations", v)
	}
}
