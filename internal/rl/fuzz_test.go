package rl

import (
	"encoding/json"
	"math/rand"
	"testing"

	"miras/internal/nn"
)

// FuzzPolicySnapshotDecode hammers the policy-snapshot codec — the input
// surface of `miras-server`'s policy-attach endpoint and of snapshot files
// on disk. Decoding + validation must never panic; a snapshot that passes
// Validate must run inference without panicking and emit a finite simplex.
func FuzzPolicySnapshotDecode(f *testing.F) {
	d, err := NewDDPG(Config{StateDim: 3, ActionDim: 3, Hidden: []int{8, 8}})
	if err != nil {
		f.Fatal(err)
	}
	fillReplay(d, rand.New(rand.NewSource(11)), 30)
	d.Update()
	good, err := json.Marshal(d.Snapshot())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"actor":null,"norm_count":0,"norm_mean":[],"norm_m2":[]}`))
	f.Add([]byte(`{"actor":{"aux_layer":-1,"layers":[{"rows":2,"cols":2,"weights":[1,0,0,1],"bias":[0,0],"activation":"softmax"}]},"norm_count":3,"norm_mean":[0.5,0.5],"norm_m2":[1,1]}`))
	f.Add([]byte(`{"actor":{"aux_layer":-1,"layers":[{"rows":2,"cols":2,"weights":[1,0,0,1],"bias":[0,0],"activation":"softmax"}]},"norm_count":3,"norm_mean":[0.5],"norm_m2":[1,1]}`))
	f.Add([]byte(`{"actor":{"aux_layer":-1,"layers":[{"rows":2,"cols":2,"weights":[1,0,0,1],"bias":[0,0],"activation":"softmax"}]},"norm_count":-1,"norm_mean":[0.5,0.5],"norm_m2":[-4,1]}`))
	f.Add([]byte(`{"actor":{"aux_layer":0,"aux_dim":1,"layers":[{"rows":1,"cols":2,"weights":[1,1],"bias":[0],"activation":"softmax"}]},"norm_count":0,"norm_mean":[1],"norm_m2":[1]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var s PolicySnapshot
		if err := json.Unmarshal(data, &s); err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		if err := s.Validate(); err != nil {
			return // rejected by validation: also fine
		}
		state := make([]float64, s.Actor.InDim())
		for i := range state {
			state[i] = float64(i)
		}
		a := s.Act(state)
		var sum float64
		for _, v := range a {
			if v < 0 || v != v {
				t.Fatalf("validated snapshot emitted invalid action %v\ninput: %q", a, data)
			}
			sum += v
		}
		_ = sum // softmax output sums to ~1; exact bound not asserted on arbitrary weights
	})
}

// TestSnapshotValidateRejectsAux pins the aux-input rejection: an actor
// with an auxiliary layer would panic inside Act (nil aux), so Validate
// must refuse it.
func TestSnapshotValidateRejectsAux(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := nn.NewNetwork(nn.Config{Sizes: []int{2, 3, 1}, AuxLayer: 1, AuxDim: 2}, rng)
	s := &PolicySnapshot{Actor: net, NormMean: []float64{0, 0}, NormM2: []float64{1, 1}}
	if err := s.Validate(); err == nil {
		t.Fatal("Validate accepted an actor with an auxiliary input")
	}
}
