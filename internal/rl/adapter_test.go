package rl

import (
	"math"
	"testing"

	"miras/internal/cluster"
	"miras/internal/env"
	"miras/internal/sim"
	"miras/internal/workflow"
)

func newAdapterEnv(t *testing.T, seed int64) *env.Env {
	t.Helper()
	engine := sim.NewEngine()
	streams := sim.NewStreams(seed)
	c, err := cluster.New(cluster.Config{
		Ensemble:        workflow.Toy(),
		Engine:          engine,
		Streams:         streams,
		StartupDelayMin: 1,
		StartupDelayMax: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := env.New(env.Config{Cluster: c, Budget: 6, WindowSec: 10})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewWindowedEnvValidation(t *testing.T) {
	if _, err := NewWindowedEnv(nil, 5, true); err == nil {
		t.Fatal("expected error for nil env")
	}
	e := newAdapterEnv(t, 70)
	if _, err := NewWindowedEnv(e, 0, true); err == nil {
		t.Fatal("expected error for zero episode length")
	}
}

func TestWindowedEnvEpisodeLifecycle(t *testing.T) {
	e := newAdapterEnv(t, 71)
	w, err := NewWindowedEnv(e, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if w.Inner() != e {
		t.Fatal("Inner lost")
	}
	if w.StateDim() != 2 || w.ActionDim() != 2 {
		t.Fatalf("dims %d/%d", w.StateDim(), w.ActionDim())
	}
	state := w.Reset()
	if len(state) != 2 {
		t.Fatalf("reset state %v", state)
	}
	action := []float64{0.5, 0.5}
	var done bool
	steps := 0
	var reward float64
	for !done {
		state, reward, done = w.Step(action)
		steps++
		if steps > 3 {
			t.Fatal("episode did not end at horizon")
		}
	}
	if steps != 3 {
		t.Fatalf("episode length %d, want 3", steps)
	}
	// Reward is Eq. 1 of the observed state.
	var sum float64
	for _, v := range state {
		sum += v
	}
	if math.Abs(reward-(1-sum)) > 1e-12 {
		t.Fatalf("reward %g != 1-ΣWIP %g", reward, 1-sum)
	}
	// Reset starts a new episode.
	w.Reset()
	_, _, done = w.Step(action)
	if done {
		t.Fatal("fresh episode ended after one step")
	}
}

func TestWindowedEnvResetSemantics(t *testing.T) {
	e := newAdapterEnv(t, 72)
	// Park WIP by submitting directly.
	for i := 0; i < 5; i++ {
		e.Cluster().Submit(0)
	}
	clearing, err := NewWindowedEnv(e, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	state := clearing.Reset()
	if state[0] != 0 {
		t.Fatalf("clearOnReset=true left WIP: %v", state)
	}
	for i := 0; i < 5; i++ {
		e.Cluster().Submit(0)
	}
	keeping, err := NewWindowedEnv(e, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	state = keeping.Reset()
	if state[0] != 5 {
		t.Fatalf("clearOnReset=false cleared WIP: %v", state)
	}
}

func TestDDPGAccessors(t *testing.T) {
	d, err := NewDDPG(Config{StateDim: 2, ActionDim: 2, Hidden: []int{8, 8}, Seed: 73})
	if err != nil {
		t.Fatal(err)
	}
	if d.Config().StateDim != 2 || d.Config().Gamma == 0 {
		t.Fatal("Config not resolved")
	}
	if d.ReplayLen() != 0 {
		t.Fatal("fresh replay not empty")
	}
	if d.NoiseSigma() <= 0 {
		t.Fatal("param-noise agent should report sigma")
	}
	noNoise, err := NewDDPG(Config{StateDim: 2, ActionDim: 2, Hidden: []int{8, 8}, Exploration: NoNoise, Seed: 74})
	if err != nil {
		t.Fatal(err)
	}
	if noNoise.NoiseSigma() != 0 {
		t.Fatal("NoNoise agent should report sigma 0")
	}
	if d.Actor() == nil {
		t.Fatal("Actor nil")
	}
}

func TestRestoreActorParams(t *testing.T) {
	d, err := NewDDPG(Config{StateDim: 2, ActionDim: 2, Hidden: []int{8, 8}, BatchSize: 8, Seed: 75})
	if err != nil {
		t.Fatal(err)
	}
	saved := d.Actor().Clone()
	state := []float64{3, 4}
	// Drift the actor by training on junk.
	for i := 0; i < 40; i++ {
		d.Observe(Experience{State: state, Action: d.Act(state), Next: state, Reward: -1})
		d.Update()
	}
	x := []float64{0.3, -0.2} // fixed (already-normalised) network input
	drifted := d.Actor().Forward(x, nil)
	want := saved.Forward(x, nil)
	if drifted[0] == want[0] {
		t.Fatal("training did not drift the actor; restore test is vacuous")
	}
	d.RestoreActorParams(saved)
	got := d.Actor().Forward(x, nil)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("RestoreActorParams did not restore the policy network")
		}
	}
}

func TestNoiseConstructorsPanic(t *testing.T) {
	for name, f := range map[string]func(){
		"OU zero dim":       func() { NewOUNoise(0, 0.1, nil) },
		"param zero sigma":  func() { NewParamNoise(0, 0.1) },
		"param zero delta":  func() { NewParamNoise(0.1, 0) },
		"action dist empty": func() { ActionDistance(nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSnapshotSaveToBadPath(t *testing.T) {
	d, err := NewDDPG(Config{StateDim: 2, ActionDim: 2, Hidden: []int{8, 8}, Seed: 76})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Snapshot().Save("/nonexistent-dir/policy.json"); err == nil {
		t.Fatal("expected error writing to bad path")
	}
}
