package rl

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"miras/internal/checkpoint"
	"miras/internal/mat"
	"miras/internal/nn"
)

// PolicySnapshot is a trained policy frozen for deployment: the actor
// network together with the state-normalisation statistics it was trained
// with. A bare actor network is not enough — Act standardises (log-
// compressed) states with running statistics, and a policy replayed
// without them sees differently scaled inputs.
type PolicySnapshot struct {
	// Actor is the deterministic policy network.
	Actor *nn.Network `json:"actor"`
	// NormCount, NormMean, and NormM2 are the Welford accumulator state of
	// the agent's log1p-state normaliser.
	NormCount float64   `json:"norm_count"`
	NormMean  []float64 `json:"norm_mean"`
	NormM2    []float64 `json:"norm_m2"`
}

// Snapshot freezes the agent's current deterministic policy.
func (d *DDPG) Snapshot() *PolicySnapshot {
	return &PolicySnapshot{
		Actor:     d.actor.Clone(),
		NormCount: d.norm.count,
		NormMean:  mat.VecClone(d.norm.mean),
		NormM2:    mat.VecClone(d.norm.m2),
	}
}

// Save writes the snapshot to path as JSON. The write is atomic (temp
// file + rename), so a crash mid-save leaves any previous snapshot intact.
func (s *PolicySnapshot) Save(path string) error {
	data, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("rl: marshal policy snapshot: %w", err)
	}
	if err := checkpoint.WriteFileAtomic(path, data, 0o644); err != nil {
		return fmt.Errorf("rl: save policy snapshot: %w", err)
	}
	return nil
}

// Validate checks a snapshot's internal consistency: a structurally valid
// actor with no auxiliary input (Act feeds it nil aux), finite parameters,
// and normaliser statistics that match the actor's input width and cannot
// produce NaN standard deviations. Snapshots arriving over the wire (the
// HTTP policy-attach endpoint) go through this before first use.
func (s *PolicySnapshot) Validate() error {
	if s.Actor == nil || len(s.Actor.Layers) == 0 {
		return fmt.Errorf("rl: snapshot has no actor network")
	}
	if err := s.Actor.Validate(); err != nil {
		return fmt.Errorf("rl: snapshot actor: %w", err)
	}
	if s.Actor.AuxLayer >= 0 {
		return fmt.Errorf("rl: snapshot actor has an auxiliary input (aux layer %d)", s.Actor.AuxLayer)
	}
	dim := s.Actor.InDim()
	if len(s.NormMean) != dim || len(s.NormM2) != dim {
		return fmt.Errorf("rl: snapshot normaliser width %d/%d != actor input %d",
			len(s.NormMean), len(s.NormM2), dim)
	}
	if math.IsNaN(s.NormCount) || math.IsInf(s.NormCount, 0) || s.NormCount < 0 {
		return fmt.Errorf("rl: snapshot normaliser count %g invalid", s.NormCount)
	}
	if !finiteAll(s.NormMean) || !finiteAll(s.NormM2) {
		return fmt.Errorf("rl: snapshot normaliser statistics not finite")
	}
	for i, v := range s.NormM2 {
		if v < 0 {
			return fmt.Errorf("rl: snapshot normaliser M2[%d] = %g negative", i, v)
		}
	}
	return nil
}

// LoadPolicySnapshot reads a snapshot written by Save and validates its
// internal consistency, rejecting non-finite weights and dimension
// mismatches with a clean error.
func LoadPolicySnapshot(path string) (*PolicySnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("rl: load policy snapshot: %w", err)
	}
	var s PolicySnapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("rl: decode policy snapshot: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// PolicyScratch holds the preallocated working memory for one caller's
// repeated ActTo evaluations of a snapshot: the normalised-input buffer and
// a forward cache shaped for the actor. A scratch is not safe for
// concurrent use, but independent scratches evaluate the same snapshot
// concurrently without coordination — the snapshot itself is read-only.
type PolicyScratch struct {
	x     []float64
	cache *nn.Cache
}

// NewScratch allocates working memory for evaluating this snapshot via
// ActTo.
func (s *PolicySnapshot) NewScratch() *PolicyScratch {
	return &PolicyScratch{
		x:     make([]float64, s.Actor.InDim()),
		cache: nn.NewCache(s.Actor),
	}
}

// Act runs the frozen policy on a raw state and returns the simplex
// action, exactly as the live agent's Act would have.
func (s *PolicySnapshot) Act(state []float64) []float64 {
	return mat.VecClone(s.ActTo(s.NewScratch(), state))
}

// ActTo is Act computing entirely in sc — zero allocations in steady state.
// The returned action aliases sc and is valid until the next ActTo with the
// same scratch. Results are bit-identical to Act: both run the same
// log-compression, normalisation, and forward pass.
func (s *PolicySnapshot) ActTo(sc *PolicyScratch, state []float64) []float64 {
	dim := s.Actor.InDim()
	if len(state) != dim {
		panic(fmt.Sprintf("rl: snapshot state width %d != %d", len(state), dim))
	}
	x := sc.x
	logCompress(x, state)
	if s.NormCount >= 2 {
		for i := range x {
			std := math.Sqrt(s.NormM2[i] / s.NormCount)
			if std < 1e-6 {
				std = 1
			}
			x[i] = (x[i] - s.NormMean[i]) / std
		}
	}
	return s.Actor.ForwardCache(sc.cache, x, nil)
}
