package rl

import (
	"fmt"
	"math"

	"miras/internal/mat"
	"miras/internal/nn"
)

// AgentState is a serializable snapshot of everything mutable in a DDPG
// agent: all five networks, both optimizers' Adam moments, the replay
// buffer, the normaliser statistics, the exploration-noise state, counters,
// and the RNG stream position. Restoring it into an agent built with the
// same Config makes subsequent training bit-identical to a run that never
// stopped.
type AgentState struct {
	Actor        *nn.Network `json:"actor"`
	ActorTarget  *nn.Network `json:"actor_target"`
	Critic       *nn.Network `json:"critic"`
	CriticTarget *nn.Network `json:"critic_target"`
	Perturbed    *nn.Network `json:"perturbed"`

	ActorOpt  nn.AdamState `json:"actor_opt"`
	CriticOpt nn.AdamState `json:"critic_opt"`

	Replay     []Experience `json:"replay"`
	ReplayNext int          `json:"replay_next"`
	ReplayFull bool         `json:"replay_full"`

	NormCount float64   `json:"norm_count"`
	NormMean  []float64 `json:"norm_mean"`
	NormM2    []float64 `json:"norm_m2"`

	NoiseSigma float64   `json:"noise_sigma,omitempty"`
	OUState    []float64 `json:"ou_state,omitempty"`

	RawNoiseViolations uint64  `json:"raw_noise_violations"`
	RawNoiseTotal      uint64  `json:"raw_noise_total"`
	Updates            uint64  `json:"updates"`
	LastCriticLoss     float64 `json:"last_critic_loss"`
	LastMeanQ          float64 `json:"last_mean_q"`

	RNG uint64 `json:"rng"`
}

// State captures the agent's full mutable state as a deep copy.
func (d *DDPG) State() *AgentState {
	s := &AgentState{
		Actor:        d.actor.Clone(),
		ActorTarget:  d.actorTarget.Clone(),
		Critic:       d.critic.Clone(),
		CriticTarget: d.criticTarget.Clone(),
		Perturbed:    d.perturbed.Clone(),
		ActorOpt:     d.actorOpt.State(),
		CriticOpt:    d.criticOpt.State(),
		ReplayNext:   d.replay.next,
		ReplayFull:   d.replay.full,
		NormCount:    d.norm.count,
		NormMean:     mat.VecClone(d.norm.mean),
		NormM2:       mat.VecClone(d.norm.m2),

		RawNoiseViolations: d.rawNoiseViolations,
		RawNoiseTotal:      d.rawNoiseTotal,
		Updates:            d.updates,
		LastCriticLoss:     d.lastCriticLoss,
		LastMeanQ:          d.lastMeanQ,
		RNG:                d.src.State(),
	}
	s.Replay = make([]Experience, len(d.replay.buf))
	for i, e := range d.replay.buf {
		s.Replay[i] = Experience{
			State:  mat.VecClone(e.State),
			Action: mat.VecClone(e.Action),
			Next:   mat.VecClone(e.Next),
			Reward: e.Reward,
			Done:   e.Done,
		}
	}
	if d.pnoise != nil {
		s.NoiseSigma = d.pnoise.Sigma
	}
	if d.ounoise != nil {
		s.OUState = mat.VecClone(d.ounoise.state)
	}
	return s
}

// Restore overwrites the agent's mutable state with a snapshot captured by
// State on an agent with the same Config. Every network is shape-checked
// and finiteness-checked before anything is mutated, so a corrupt snapshot
// leaves the agent untouched.
func (d *DDPG) Restore(s *AgentState) error {
	for _, n := range []struct {
		name string
		cur  *nn.Network
		new  *nn.Network
	}{
		{"actor", d.actor, s.Actor},
		{"actor target", d.actorTarget, s.ActorTarget},
		{"critic", d.critic, s.Critic},
		{"critic target", d.criticTarget, s.CriticTarget},
		{"perturbed actor", d.perturbed, s.Perturbed},
	} {
		if n.new == nil {
			return fmt.Errorf("rl: restore: missing %s network", n.name)
		}
		if err := n.new.Validate(); err != nil {
			return fmt.Errorf("rl: restore: %s: %w", n.name, err)
		}
		if err := n.cur.SameShape(n.new); err != nil {
			return fmt.Errorf("rl: restore: %s: %w", n.name, err)
		}
	}
	dim := d.cfg.StateDim
	if len(s.NormMean) != dim || len(s.NormM2) != dim {
		return fmt.Errorf("rl: restore: normaliser width %d/%d != state dim %d",
			len(s.NormMean), len(s.NormM2), dim)
	}
	if s.NormCount < 0 || !finiteAll(s.NormMean) || !finiteAll(s.NormM2) {
		return fmt.Errorf("rl: restore: invalid normaliser statistics")
	}
	for _, v := range s.NormM2 {
		if v < 0 {
			return fmt.Errorf("rl: restore: negative normaliser variance accumulator %g", v)
		}
	}
	if len(s.Replay) > d.replay.Cap() {
		return fmt.Errorf("rl: restore: replay size %d exceeds capacity %d",
			len(s.Replay), d.replay.Cap())
	}
	if s.ReplayNext < 0 || (len(s.Replay) > 0 && s.ReplayNext >= d.replay.Cap()) {
		return fmt.Errorf("rl: restore: replay cursor %d out of range", s.ReplayNext)
	}
	for i, e := range s.Replay {
		if len(e.State) != dim || len(e.Next) != dim || len(e.Action) != d.cfg.ActionDim {
			return fmt.Errorf("rl: restore: replay experience %d has wrong dimensions", i)
		}
	}
	if d.pnoise != nil && (math.IsNaN(s.NoiseSigma) || s.NoiseSigma <= 0) {
		return fmt.Errorf("rl: restore: invalid parameter-noise sigma %g", s.NoiseSigma)
	}
	if d.ounoise != nil && len(s.OUState) != d.cfg.ActionDim {
		return fmt.Errorf("rl: restore: OU state width %d != action dim %d",
			len(s.OUState), d.cfg.ActionDim)
	}

	// Validation passed; mutate. Parameters are copied into the existing
	// networks (not swapped) so the batch caches and optimizers keep
	// pointing at live storage.
	d.actor.CopyParamsFrom(s.Actor)
	d.actorTarget.CopyParamsFrom(s.ActorTarget)
	d.critic.CopyParamsFrom(s.Critic)
	d.criticTarget.CopyParamsFrom(s.CriticTarget)
	d.perturbed.CopyParamsFrom(s.Perturbed)
	if err := d.actorOpt.SetState(s.ActorOpt); err != nil {
		return fmt.Errorf("rl: restore: actor optimizer: %w", err)
	}
	if err := d.criticOpt.SetState(s.CriticOpt); err != nil {
		return fmt.Errorf("rl: restore: critic optimizer: %w", err)
	}
	d.replay.buf = d.replay.buf[:0]
	for _, e := range s.Replay {
		d.replay.buf = append(d.replay.buf, Experience{
			State:  mat.VecClone(e.State),
			Action: mat.VecClone(e.Action),
			Next:   mat.VecClone(e.Next),
			Reward: e.Reward,
			Done:   e.Done,
		})
	}
	d.replay.next = s.ReplayNext
	d.replay.full = s.ReplayFull
	d.norm.count = s.NormCount
	copy(d.norm.mean, s.NormMean)
	copy(d.norm.m2, s.NormM2)
	if d.pnoise != nil {
		d.pnoise.Sigma = s.NoiseSigma
	}
	if d.ounoise != nil {
		copy(d.ounoise.state, s.OUState)
	}
	d.rawNoiseViolations = s.RawNoiseViolations
	d.rawNoiseTotal = s.RawNoiseTotal
	d.updates = s.Updates
	d.lastCriticLoss = s.LastCriticLoss
	d.lastMeanQ = s.LastMeanQ
	d.src.SetState(s.RNG)
	return nil
}

// CheckHealth probes the agent for numeric divergence: non-finite weights
// in any network, a non-finite critic loss, or a critic estimate whose
// magnitude exceeds maxAbsQ (maxAbsQ <= 0 disables the bound). A non-nil
// error means the agent's state is poisoned and the caller should roll
// back to the last healthy snapshot.
func (d *DDPG) CheckHealth(maxAbsQ float64) error {
	for _, n := range []struct {
		name string
		net  *nn.Network
	}{
		{"actor", d.actor},
		{"actor target", d.actorTarget},
		{"critic", d.critic},
		{"critic target", d.criticTarget},
		{"perturbed actor", d.perturbed},
	} {
		if err := n.net.CheckFinite(); err != nil {
			return fmt.Errorf("rl: %s diverged: %w", n.name, err)
		}
	}
	if math.IsNaN(d.lastCriticLoss) || math.IsInf(d.lastCriticLoss, 0) {
		return fmt.Errorf("rl: critic loss diverged: %g", d.lastCriticLoss)
	}
	if math.IsNaN(d.lastMeanQ) || math.IsInf(d.lastMeanQ, 0) {
		return fmt.Errorf("rl: mean Q diverged: %g", d.lastMeanQ)
	}
	if maxAbsQ > 0 && math.Abs(d.lastMeanQ) > maxAbsQ {
		return fmt.Errorf("rl: |mean Q| = %g exceeds bound %g", math.Abs(d.lastMeanQ), maxAbsQ)
	}
	if !finiteAll(d.norm.mean) || !finiteAll(d.norm.m2) {
		return fmt.Errorf("rl: state normaliser diverged")
	}
	return nil
}

// LastUpdateStats returns the critic loss and mean Q of the most recent
// minibatch update (zeros before the first update).
func (d *DDPG) LastUpdateStats() (criticLoss, meanQ float64) {
	return d.lastCriticLoss, d.lastMeanQ
}

func finiteAll(xs []float64) bool {
	for _, v := range xs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
