package rl

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

func testConfig() Config {
	return Config{
		StateDim:  3,
		ActionDim: 3,
		Hidden:    []int{8, 8},
		BatchSize: 8,
	}
}

// fillReplay feeds n synthetic transitions to the agent through Observe,
// using a deterministic generator separate from the agent's own stream.
func fillReplay(d *DDPG, rng *rand.Rand, n int) {
	dim, adim := d.cfg.StateDim, d.cfg.ActionDim
	for i := 0; i < n; i++ {
		e := Experience{
			State:  make([]float64, dim),
			Action: make([]float64, adim),
			Next:   make([]float64, dim),
			Reward: rng.NormFloat64(),
		}
		for j := 0; j < dim; j++ {
			e.State[j] = rng.Float64() * 10
			e.Next[j] = rng.Float64() * 10
		}
		var sum float64
		for j := 0; j < adim; j++ {
			e.Action[j] = rng.Float64()
			sum += e.Action[j]
		}
		for j := 0; j < adim; j++ {
			e.Action[j] /= sum
		}
		d.Observe(e)
	}
}

// TestAgentStateRoundTrip checkpoints an agent mid-training through a JSON
// round trip (exactly what the checkpoint store does), restores it into a
// freshly constructed agent, and verifies both produce bit-identical
// actions and update statistics afterwards.
func TestAgentStateRoundTrip(t *testing.T) {
	cfg := testConfig()
	a, err := NewDDPG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feed := rand.New(rand.NewSource(77))
	fillReplay(a, feed, 40)
	a.BeginEpisode()
	for i := 0; i < 5; i++ {
		a.Update()
	}

	blob, err := json.Marshal(a.State())
	if err != nil {
		t.Fatal(err)
	}
	var st AgentState
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	b, err := NewDDPG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(&st); err != nil {
		t.Fatal(err)
	}

	// Continue both: explore, observe, update — everything must match.
	feedA := rand.New(rand.NewSource(88))
	feedB := rand.New(rand.NewSource(88))
	for i := 0; i < 3; i++ {
		a.BeginEpisode()
		b.BeginEpisode()
		fillReplay(a, feedA, 10)
		fillReplay(b, feedB, 10)
		la, qa := a.Update()
		lb, qb := b.Update()
		if la != lb || qa != qb {
			t.Fatalf("round %d: update stats diverged: (%g,%g) != (%g,%g)", i, la, qa, lb, qb)
		}
	}
	state := []float64{1.5, 0.25, 7}
	actA, actB := a.Act(state), b.Act(state)
	for i := range actA {
		if actA[i] != actB[i] {
			t.Fatalf("action diverged at %d: %g != %g", i, actA[i], actB[i])
		}
	}
	explA, explB := a.ActExplore(state), b.ActExplore(state)
	for i := range explA {
		if explA[i] != explB[i] {
			t.Fatalf("exploratory action diverged at %d: %g != %g", i, explA[i], explB[i])
		}
	}
}

func TestAgentRestoreRejectsCorruptState(t *testing.T) {
	cfg := testConfig()
	a, err := NewDDPG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fillReplay(a, rand.New(rand.NewSource(5)), 20)
	a.Update()

	cases := map[string]func(s *AgentState){
		"nil actor":     func(s *AgentState) { s.Actor = nil },
		"nan weight":    func(s *AgentState) { s.Critic.Layers[0].W.Data[0] = math.NaN() },
		"wrong shape":   func(s *AgentState) { s.Actor.Layers[0].B = s.Actor.Layers[0].B[:1] },
		"norm width":    func(s *AgentState) { s.NormMean = s.NormMean[:1] },
		"negative m2":   func(s *AgentState) { s.NormM2[0] = -1 },
		"bad sigma":     func(s *AgentState) { s.NoiseSigma = -0.5 },
		"replay dims":   func(s *AgentState) { s.Replay[0].Action = s.Replay[0].Action[:1] },
		"replay cursor": func(s *AgentState) { s.ReplayNext = -3 },
		"moment layers": func(s *AgentState) { s.ActorOpt.MW = s.ActorOpt.MW[:1] },
	}
	for name, corrupt := range cases {
		st := a.State()
		corrupt(st)
		b, err := NewDDPG(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Restore(st); err == nil {
			t.Errorf("%s: Restore accepted corrupt state", name)
		}
	}
}

func TestCheckHealth(t *testing.T) {
	a, err := NewDDPG(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckHealth(0); err != nil {
		t.Fatalf("fresh agent unhealthy: %v", err)
	}
	fillReplay(a, rand.New(rand.NewSource(6)), 20)
	a.Update()
	if err := a.CheckHealth(1e6); err != nil {
		t.Fatalf("trained agent unhealthy: %v", err)
	}

	// Poison the critic: NaN weights must be detected.
	healthy := a.State()
	a.Critic().Layers[0].W.Data[0] = math.NaN()
	if err := a.CheckHealth(0); err == nil {
		t.Fatal("NaN critic weight not detected")
	}
	// Roll back to the healthy snapshot: the probe passes again.
	if err := a.Restore(healthy); err != nil {
		t.Fatal(err)
	}
	if err := a.CheckHealth(0); err != nil {
		t.Fatalf("agent unhealthy after rollback: %v", err)
	}

	// Q blow-up beyond the configured bound.
	a.lastMeanQ = 1e9
	if err := a.CheckHealth(100); err == nil {
		t.Fatal("Q blow-up not detected")
	}
	if err := a.CheckHealth(0); err != nil {
		t.Fatalf("disabled bound still flagged: %v", err)
	}
	a.lastCriticLoss = math.Inf(1)
	if err := a.CheckHealth(0); err == nil {
		t.Fatal("Inf critic loss not detected")
	}
}
