package mat

import (
	"fmt"
	"math"
)

// This file contains the free vector helpers used throughout the learning
// and control code. Vectors are plain []float64 slices; helpers either
// allocate fresh results (suffix-free names) or write into a destination
// argument (…To names) for hot loops.

// VecClone returns a copy of x.
func VecClone(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// VecAdd returns x + y as a fresh slice.
func VecAdd(x, y []float64) []float64 {
	checkSameLen("VecAdd", x, y)
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] + y[i]
	}
	return out
}

// VecSub returns x − y as a fresh slice.
func VecSub(x, y []float64) []float64 {
	checkSameLen("VecSub", x, y)
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] - y[i]
	}
	return out
}

// VecAddScaled adds s*y to x in place.
func VecAddScaled(x, y []float64, s float64) {
	checkSameLen("VecAddScaled", x, y)
	for i := range x {
		x[i] += s * y[i]
	}
}

// VecScale multiplies x by s in place.
func VecScale(x []float64, s float64) {
	for i := range x {
		x[i] *= s
	}
}

// VecDot returns the inner product of x and y.
func VecDot(x, y []float64) float64 {
	checkSameLen("VecDot", x, y)
	var sum float64
	for i := range x {
		sum += x[i] * y[i]
	}
	return sum
}

// VecSum returns the sum of the entries of x.
func VecSum(x []float64) float64 {
	var sum float64
	for _, v := range x {
		sum += v
	}
	return sum
}

// VecMean returns the arithmetic mean of x, or 0 for an empty slice.
func VecMean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return VecSum(x) / float64(len(x))
}

// VecStd returns the population standard deviation of x, or 0 for fewer
// than two entries.
func VecStd(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	mean := VecMean(x)
	var sum float64
	for _, v := range x {
		d := v - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(x)))
}

// VecNorm returns the Euclidean norm of x.
func VecNorm(x []float64) float64 {
	return math.Sqrt(VecDot(x, x))
}

// VecDist returns the Euclidean distance between x and y.
func VecDist(x, y []float64) float64 {
	checkSameLen("VecDist", x, y)
	var sum float64
	for i := range x {
		d := x[i] - y[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// VecMax returns the maximum entry of x. It panics on an empty slice.
func VecMax(x []float64) float64 {
	if len(x) == 0 {
		panic("mat: VecMax of empty slice")
	}
	best := x[0]
	for _, v := range x[1:] {
		if v > best {
			best = v
		}
	}
	return best
}

// VecMin returns the minimum entry of x. It panics on an empty slice.
func VecMin(x []float64) float64 {
	if len(x) == 0 {
		panic("mat: VecMin of empty slice")
	}
	best := x[0]
	for _, v := range x[1:] {
		if v < best {
			best = v
		}
	}
	return best
}

// VecArgmax returns the index of the first maximal entry of x. It panics on
// an empty slice.
func VecArgmax(x []float64) int {
	if len(x) == 0 {
		panic("mat: VecArgmax of empty slice")
	}
	best := 0
	for i, v := range x {
		if v > x[best] {
			best = i
		}
	}
	return best
}

// VecClamp clamps each entry of x into [lo, hi] in place.
func VecClamp(x []float64, lo, hi float64) {
	for i, v := range x {
		if v < lo {
			x[i] = lo
		} else if v > hi {
			x[i] = hi
		}
	}
}

// Softmax writes the softmax of x into dst (which may alias x). It uses the
// max-subtraction trick for numerical stability.
func Softmax(dst, x []float64) {
	checkSameLen("Softmax", dst, x)
	if len(x) == 0 {
		return
	}
	max := VecMax(x)
	var sum float64
	for i, v := range x {
		e := math.Exp(v - max)
		dst[i] = e
		sum += e
	}
	for i := range dst {
		dst[i] /= sum
	}
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of x using linear
// interpolation between order statistics. x is not modified. It panics on
// an empty slice.
func Percentile(x []float64, p float64) float64 {
	if len(x) == 0 {
		panic("mat: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("mat: Percentile p=%g out of [0,100]", p))
	}
	sorted := VecClone(x)
	insertionSort(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// insertionSort is used instead of sort.Float64s to keep Percentile free of
// allocation-heavy interface dispatch for the small slices it typically
// sees; it falls back to a shell-sort gap sequence for large inputs.
func insertionSort(x []float64) {
	gaps := []int{701, 301, 132, 57, 23, 10, 4, 1}
	for _, gap := range gaps {
		if gap >= len(x) {
			continue
		}
		for i := gap; i < len(x); i++ {
			v := x[i]
			j := i
			for ; j >= gap && x[j-gap] > v; j -= gap {
				x[j] = x[j-gap]
			}
			x[j] = v
		}
	}
}

func checkSameLen(op string, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: %s length mismatch %d vs %d", op, len(x), len(y)))
	}
}
