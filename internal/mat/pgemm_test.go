package mat

import (
	"math/rand"
	"runtime"
	"testing"

	"miras/internal/parallel"
)

// withWorkers runs fn under each of the given parallel worker bounds,
// restoring the default afterwards.
func withWorkers(t *testing.T, counts []int, fn func(w int) *Matrix) map[int]*Matrix {
	t.Helper()
	defer parallel.SetMaxWorkers(0)
	out := make(map[int]*Matrix)
	for _, w := range counts {
		parallel.SetMaxWorkers(w)
		out[w] = fn(w)
	}
	return out
}

// workerCounts spans the serial path, small fan-outs, an odd count, and
// whatever the host really has.
func workerCounts() []int {
	return []int{1, 2, 7, runtime.GOMAXPROCS(0)}
}

func requireBitIdentical(t *testing.T, results map[int]*Matrix, context string) {
	t.Helper()
	ref, refW := (*Matrix)(nil), 0
	for w, m := range results {
		if ref == nil {
			ref, refW = m, w
			continue
		}
		for i, v := range m.Data {
			if v != ref.Data[i] {
				t.Fatalf("%s: entry %d differs between %d and %d workers: %v vs %v",
					context, i, refW, w, ref.Data[i], v)
			}
		}
	}
}

// TestGemmBitIdenticalAcrossWorkers pins the tentpole determinism claim:
// the tiled parallel kernels produce byte-for-byte the serial result for
// any worker count, on shapes spanning both sides of the parallel
// threshold and odd row counts that leave ragged final tiles.
func TestGemmBitIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := [][3]int{{3, 5, 2}, {64, 256, 256}, {67, 130, 129}, {256, 64, 64}, {129, 257, 33}}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a, b := randMat(m, k, rng), randMat(k, n, rng)
		bt := randMat(n, k, rng)

		mul := withWorkers(t, workerCounts(), func(int) *Matrix {
			dst := New(m, n)
			dst.MulTo(a, b)
			return dst
		})
		requireBitIdentical(t, mul, "MulTo")

		mulT := withWorkers(t, workerCounts(), func(int) *Matrix {
			dst := New(m, n)
			dst.MulTransTo(a, bt)
			return dst
		})
		requireBitIdentical(t, mulT, "MulTransTo")

		p, q := randMat(k, m, rng), randMat(k, n, rng)
		rank := withWorkers(t, workerCounts(), func(int) *Matrix {
			dst := New(m, n)
			for i := range dst.Data {
				dst.Data[i] = 0.25
			}
			dst.AddMulATBScaled(p, q, 0.5)
			return dst
		})
		requireBitIdentical(t, rank, "AddMulATBScaled")
	}
}

// biasEpilogue adds a constant per-column bias, the simplest nontrivial
// epilogue.
type biasEpilogue struct{ b []float64 }

func (e *biasEpilogue) ApplyRow(_ int, row []float64) {
	for j, v := range e.b {
		row[j] += v
	}
}

// TestFusedEpilogueMatchesSeparatePasses checks the fused bias epilogue
// equals a plain product followed by AddRowVector, bit for bit, serial and
// parallel.
func TestFusedEpilogueMatchesSeparatePasses(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, s := range [][3]int{{5, 9, 4}, {64, 256, 256}, {63, 127, 65}} {
		m, k, n := s[0], s[1], s[2]
		a, bt := randMat(m, k, rng), randMat(n, k, rng)
		bias := make([]float64, n)
		for i := range bias {
			bias[i] = rng.NormFloat64()
		}

		want := New(m, n)
		want.MulTransTo(a, bt)
		want.AddRowVector(bias)

		fused := withWorkers(t, workerCounts(), func(int) *Matrix {
			dst := New(m, n)
			dst.MulTransEpilogueTo(a, bt, &biasEpilogue{b: bias})
			return dst
		})
		fused[-1] = want
		requireBitIdentical(t, fused, "fused epilogue")
	}
}

// TestMulToBufReusesBuffer checks the caller-owned pack buffer variant is
// correct and allocation-free once the buffer is warm.
func TestMulToBufReusesBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a, b := randMat(17, 31, rng), randMat(31, 23, rng)
	dst := New(17, 23)
	var buf []float64
	dst.MulToBuf(a, b, &buf, nil)
	want := naiveMul(a, b)
	for i := range dst.Data {
		if diff := dst.Data[i] - want.Data[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("entry %d: got %v want %v", i, dst.Data[i], want.Data[i])
		}
	}
	if allocs := testing.AllocsPerRun(20, func() { dst.MulToBuf(a, b, &buf, nil) }); allocs != 0 {
		t.Fatalf("MulToBuf with warm buffer: %v allocs/run, want 0", allocs)
	}
}
