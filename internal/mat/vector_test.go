package mat

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestVecBasicOps(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if got := VecAdd(x, y); got[0] != 5 || got[2] != 9 {
		t.Fatalf("VecAdd=%v", got)
	}
	if got := VecSub(y, x); got[0] != 3 || got[2] != 3 {
		t.Fatalf("VecSub=%v", got)
	}
	if got := VecDot(x, y); got != 32 {
		t.Fatalf("VecDot=%g, want 32", got)
	}
	if got := VecSum(x); got != 6 {
		t.Fatalf("VecSum=%g, want 6", got)
	}
	if got := VecMean(x); got != 2 {
		t.Fatalf("VecMean=%g, want 2", got)
	}
	if got := VecNorm([]float64{3, 4}); math.Abs(got-5) > 1e-12 {
		t.Fatalf("VecNorm=%g, want 5", got)
	}
	if got := VecDist(x, y); math.Abs(got-math.Sqrt(27)) > 1e-12 {
		t.Fatalf("VecDist=%g", got)
	}
}

func TestVecAddScaledInPlace(t *testing.T) {
	x := []float64{1, 1}
	VecAddScaled(x, []float64{2, 4}, 0.5)
	if x[0] != 2 || x[1] != 3 {
		t.Fatalf("VecAddScaled=%v", x)
	}
}

func TestVecMinMaxArgmax(t *testing.T) {
	x := []float64{3, -1, 7, 7, 2}
	if VecMax(x) != 7 {
		t.Fatal("VecMax wrong")
	}
	if VecMin(x) != -1 {
		t.Fatal("VecMin wrong")
	}
	if VecArgmax(x) != 2 {
		t.Fatalf("VecArgmax=%d, want first maximal index 2", VecArgmax(x))
	}
}

func TestVecMeanEmptyIsZero(t *testing.T) {
	if VecMean(nil) != 0 {
		t.Fatal("VecMean(nil) should be 0")
	}
	if VecStd([]float64{5}) != 0 {
		t.Fatal("VecStd of single element should be 0")
	}
}

func TestVecClamp(t *testing.T) {
	x := []float64{-5, 0.5, 10}
	VecClamp(x, 0, 1)
	if x[0] != 0 || x[1] != 0.5 || x[2] != 1 {
		t.Fatalf("VecClamp=%v", x)
	}
}

func TestVecCloneIndependence(t *testing.T) {
	x := []float64{1, 2}
	c := VecClone(x)
	c[0] = 9
	if x[0] != 1 {
		t.Fatal("VecClone aliased input")
	}
}

func TestSoftmaxHandComputed(t *testing.T) {
	x := []float64{0, 0}
	dst := make([]float64, 2)
	Softmax(dst, x)
	if math.Abs(dst[0]-0.5) > 1e-12 || math.Abs(dst[1]-0.5) > 1e-12 {
		t.Fatalf("Softmax uniform wrong: %v", dst)
	}
}

func TestSoftmaxLargeValuesStable(t *testing.T) {
	x := []float64{1000, 1001, 999}
	dst := make([]float64, 3)
	Softmax(dst, x)
	for _, v := range dst {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("Softmax unstable on large inputs: %v", dst)
		}
	}
	if VecArgmax(dst) != 1 {
		t.Fatalf("Softmax should preserve argmax: %v", dst)
	}
}

// Property: softmax output is on the probability simplex and order-preserving.
func TestSoftmaxSimplexProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64() * 10
		}
		dst := make([]float64, n)
		Softmax(dst, x)
		sum := VecSum(dst)
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		for i := range dst {
			if dst[i] < 0 || dst[i] > 1 {
				return false
			}
		}
		// Order preservation: argmax of input equals argmax of output.
		return VecArgmax(x) == VecArgmax(dst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileHandComputed(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(x, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Percentile(%g)=%g, want %g", c.p, got, c.want)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	x := []float64{5, 1, 3}
	Percentile(x, 50)
	if x[0] != 5 || x[1] != 1 || x[2] != 3 {
		t.Fatalf("Percentile mutated input: %v", x)
	}
}

func TestPercentileSingleElement(t *testing.T) {
	if got := Percentile([]float64{42}, 75); got != 42 {
		t.Fatalf("Percentile single=%g, want 42", got)
	}
}

// Property: Percentile(50) matches the true median and sits inside
// [min, max] for every input, and agrees with a sort-based reference.
func TestPercentileAgainstSortedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64() * 100
		}
		p := r.Float64() * 100
		got := Percentile(x, p)
		ref := append([]float64(nil), x...)
		sort.Float64s(ref)
		rank := p / 100 * float64(n-1)
		lo, hi := int(math.Floor(rank)), int(math.Ceil(rank))
		frac := rank - float64(lo)
		want := ref[lo]*(1-frac) + ref[hi]*frac
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestVecStdKnownValue(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := VecStd(x); math.Abs(got-2) > 1e-12 {
		t.Fatalf("VecStd=%g, want 2", got)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	funcs := map[string]func(){
		"VecAdd":  func() { VecAdd([]float64{1}, []float64{1, 2}) },
		"VecSub":  func() { VecSub([]float64{1}, []float64{1, 2}) },
		"VecDot":  func() { VecDot([]float64{1}, []float64{1, 2}) },
		"VecDist": func() { VecDist([]float64{1}, []float64{1, 2}) },
		"Softmax": func() { Softmax(make([]float64, 1), []float64{1, 2}) },
	}
	for name, f := range funcs {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic on length mismatch", name)
				}
			}()
			f()
		}()
	}
}

func TestVecScale(t *testing.T) {
	x := []float64{2, -4}
	VecScale(x, 0.5)
	if x[0] != 1 || x[1] != -2 {
		t.Fatalf("VecScale=%v", x)
	}
}

func TestEmptySlicePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"VecMax":     func() { VecMax(nil) },
		"VecMin":     func() { VecMin(nil) },
		"VecArgmax":  func() { VecArgmax(nil) },
		"Percentile": func() { Percentile(nil, 50) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic on empty input", name)
				}
			}()
			f()
		}()
	}
}

func TestPercentileOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Percentile([]float64{1}, 101)
}

func TestSoftmaxEmptyIsNoop(t *testing.T) {
	Softmax(nil, nil) // must not panic
}

func TestPercentileLargeInputUsesShellSort(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, 2000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := Percentile(x, 50)
	ref := append([]float64(nil), x...)
	sort.Float64s(ref)
	want := (ref[999] + ref[1000]) / 2
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("median=%g, want %g", got, want)
	}
}
