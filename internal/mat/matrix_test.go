package mat

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewDimensions(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("got %dx%d, want 3x4", m.Rows, m.Cols)
	}
	if len(m.Data) != 12 {
		t.Fatalf("got data length %d, want 12", len(m.Data))
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatalf("new matrix not zeroed: %v", m.Data)
		}
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimensions")
		}
	}()
	New(-1, 2)
}

func TestNewFromSlice(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	m := NewFromSlice(2, 3, data)
	if m.At(0, 0) != 1 || m.At(0, 2) != 3 || m.At(1, 0) != 4 || m.At(1, 2) != 6 {
		t.Fatalf("row-major layout wrong: %v", m)
	}
	// Must be a copy, not an alias.
	data[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("NewFromSlice aliased the input slice")
	}
}

func TestNewFromSlicePanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	NewFromSlice(2, 2, []float64{1, 2, 3})
}

func TestAtSetRoundTrip(t *testing.T) {
	m := New(2, 2)
	m.Set(1, 0, 7.5)
	if got := m.At(1, 0); got != 7.5 {
		t.Fatalf("At(1,0)=%g, want 7.5", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	m := New(2, 2)
	for _, idx := range [][2]int{{2, 0}, {0, 2}, {-1, 0}, {0, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for index %v", idx)
				}
			}()
			m.At(idx[0], idx[1])
		}()
	}
}

func TestRowAliases(t *testing.T) {
	m := NewFromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	row := m.Row(1)
	row[0] = 40
	if m.At(1, 0) != 40 {
		t.Fatal("Row did not alias matrix storage")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := NewFromSlice(2, 2, []float64{1, 2, 3, 4})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliased source storage")
	}
}

func TestMulVecHandComputed(t *testing.T) {
	m := NewFromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got := m.MulVec([]float64{1, 0, -1})
	want := []float64{-2, -2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulVec=%v, want %v", got, want)
		}
	}
}

func TestMulVecTransHandComputed(t *testing.T) {
	m := NewFromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	dst := make([]float64, 3)
	m.MulVecTransTo(dst, []float64{1, -1})
	want := []float64{-3, -3, -3}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulVecTrans=%v, want %v", dst, want)
		}
	}
}

func TestMulHandComputed(t *testing.T) {
	a := NewFromSlice(2, 2, []float64{1, 2, 3, 4})
	b := NewFromSlice(2, 2, []float64{5, 6, 7, 8})
	got := a.Mul(b)
	want := NewFromSlice(2, 2, []float64{19, 22, 43, 50})
	if !got.Equal(want, 0) {
		t.Fatalf("Mul=%v, want %v", got, want)
	}
}

func TestMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for incompatible product")
		}
	}()
	New(2, 3).Mul(New(2, 3))
}

func TestTranspose(t *testing.T) {
	m := NewFromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose dims %dx%d, want 3x2", tr.Rows, tr.Cols)
	}
	if tr.At(0, 1) != 4 || tr.At(2, 0) != 3 {
		t.Fatalf("transpose entries wrong: %v", tr)
	}
}

func TestAddScaled(t *testing.T) {
	a := NewFromSlice(1, 3, []float64{1, 2, 3})
	b := NewFromSlice(1, 3, []float64{10, 20, 30})
	a.AddScaled(b, 0.5)
	want := []float64{6, 12, 18}
	for i, v := range want {
		if a.Data[i] != v {
			t.Fatalf("AddScaled=%v, want %v", a.Data, want)
		}
	}
}

func TestAddOuterScaled(t *testing.T) {
	m := New(2, 2)
	m.AddOuterScaled([]float64{1, 2}, []float64{3, 4}, 2)
	want := NewFromSlice(2, 2, []float64{6, 8, 12, 16})
	if !m.Equal(want, 0) {
		t.Fatalf("AddOuterScaled=%v, want %v", m, want)
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := NewFromSlice(1, 2, []float64{3, 4})
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("FrobeniusNorm=%g, want 5", got)
	}
}

func TestScaleAndZeroAndFill(t *testing.T) {
	m := NewFromSlice(1, 2, []float64{2, -4})
	m.Scale(0.5)
	if m.At(0, 0) != 1 || m.At(0, 1) != -2 {
		t.Fatalf("Scale wrong: %v", m)
	}
	m.Fill(3)
	if m.At(0, 0) != 3 || m.At(0, 1) != 3 {
		t.Fatalf("Fill wrong: %v", m)
	}
	m.Zero()
	if m.At(0, 0) != 0 || m.At(0, 1) != 0 {
		t.Fatalf("Zero wrong: %v", m)
	}
}

// Property: (AB)ᵀ = BᵀAᵀ for random matrices.
func TestMulTransposeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, k, m := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a := NewRandn(n, k, 1, r)
		b := NewRandn(k, m, 1, r)
		lhs := a.Mul(b).Transpose()
		rhs := b.Transpose().Mul(a.Transpose())
		return lhs.Equal(rhs, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: matrix-vector product agrees with the full matrix product
// against a column matrix.
func TestMulVecAgreesWithMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, k := 1+r.Intn(6), 1+r.Intn(6)
		a := NewRandn(n, k, 1, r)
		x := make([]float64, k)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		viaVec := a.MulVec(x)
		viaMat := a.Mul(NewFromSlice(k, 1, x))
		for i := range viaVec {
			if math.Abs(viaVec[i]-viaMat.At(i, 0)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Property: transposing twice is the identity.
func TestDoubleTransposeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := NewRandn(1+r.Intn(7), 1+r.Intn(7), 1, r)
		return a.Transpose().Transpose().Equal(a, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestNewHeAndXavierStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	he := NewHe(200, 200, 200, rng)
	std := VecStd(he.Data)
	wantStd := math.Sqrt(2.0 / 200)
	if math.Abs(std-wantStd) > wantStd*0.15 {
		t.Fatalf("He init std=%g, want about %g", std, wantStd)
	}
	xa := NewXavier(200, 200, rng)
	limit := math.Sqrt(6.0 / 400)
	if VecMax(xa.Data) > limit || VecMin(xa.Data) < -limit {
		t.Fatalf("Xavier init outside [-%g, %g]", limit, limit)
	}
}

func TestCopyFromAndAdd(t *testing.T) {
	a := NewFromSlice(1, 2, []float64{1, 2})
	b := New(1, 2)
	b.CopyFrom(a)
	if b.At(0, 1) != 2 {
		t.Fatalf("CopyFrom wrong: %v", b)
	}
	b.Add(a)
	if b.At(0, 0) != 2 || b.At(0, 1) != 4 {
		t.Fatalf("Add wrong: %v", b)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for dim mismatch")
		}
	}()
	b.CopyFrom(New(2, 2))
}

func TestStringRendering(t *testing.T) {
	m := NewFromSlice(2, 2, []float64{1, 2, 3, 4.5})
	s := m.String()
	for _, want := range []string{"Matrix(2x2)", "1 2", "3 4.5", ";"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String()=%q missing %q", s, want)
		}
	}
}

func TestEqualDimensionMismatch(t *testing.T) {
	if New(1, 2).Equal(New(2, 1), 0) {
		t.Fatal("different shapes reported equal")
	}
}

func TestMulVecPanics(t *testing.T) {
	m := New(2, 3)
	for name, f := range map[string]func(){
		"short input":        func() { m.MulVec([]float64{1}) },
		"short output":       func() { m.MulVecTo(make([]float64, 1), make([]float64, 3)) },
		"trans short input":  func() { m.MulVecTransTo(make([]float64, 3), make([]float64, 1)) },
		"trans short output": func() { m.MulVecTransTo(make([]float64, 1), make([]float64, 2)) },
		"outer mismatch":     func() { m.AddOuterScaled(make([]float64, 1), make([]float64, 3), 1) },
		"addscaled mismatch": func() { m.AddScaled(New(1, 1), 1) },
		"row out of range":   func() { m.Row(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestNewHePanicsOnBadFanIn(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHe(2, 2, 0, rand.New(rand.NewSource(1)))
}
