// Package mat provides the dense linear-algebra primitives used by the
// neural-network and control code in this repository. It implements the
// small subset of BLAS-like operations that multilayer perceptrons need:
// row-major matrices, matrix-matrix and matrix-vector products, elementwise
// maps, and a handful of reductions.
//
// The package is deliberately allocation-conscious: every operation has an
// in-place or destination-passing variant so the training hot loops can run
// without garbage. All operations panic on dimension mismatch — a mismatch
// is a programming error, not a runtime condition to recover from.
package mat

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Matrix is a dense, row-major matrix of float64 values.
//
// The zero value is an empty 0×0 matrix. Use New, NewFromSlice, or one of the
// random initialisers to construct a sized matrix.
type Matrix struct {
	// Rows and Cols are the matrix dimensions.
	Rows, Cols int
	// Data holds the entries in row-major order: element (i, j) is
	// Data[i*Cols+j]. Its length is always Rows*Cols.
	Data []float64
}

// New returns a zero-initialised matrix with the given dimensions.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewFromSlice returns a rows×cols matrix backed by a copy of data, which
// must have exactly rows*cols elements in row-major order.
func NewFromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: data length %d does not match %dx%d", len(data), rows, cols))
	}
	m := New(rows, cols)
	copy(m.Data, data)
	return m
}

// NewRandn returns a rows×cols matrix with entries drawn i.i.d. from a
// Gaussian with the given standard deviation.
func NewRandn(rows, cols int, stddev float64, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * stddev
	}
	return m
}

// NewXavier returns a rows×cols matrix initialised with Glorot/Xavier
// uniform scaling, appropriate for tanh/sigmoid layers.
func NewXavier(rows, cols int, rng *rand.Rand) *Matrix {
	limit := math.Sqrt(6.0 / float64(rows+cols))
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * limit
	}
	return m
}

// NewHe returns a rows×cols matrix initialised with He/Kaiming Gaussian
// scaling, appropriate for ReLU layers. fanIn is typically rows (the input
// dimension of the layer the matrix parameterises).
func NewHe(rows, cols, fanIn int, rng *rand.Rand) *Matrix {
	if fanIn <= 0 {
		panic("mat: NewHe requires positive fanIn")
	}
	return NewRandn(rows, cols, math.Sqrt(2.0/float64(fanIn)), rng)
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.checkIndex(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.checkIndex(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Matrix) checkIndex(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range for %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Row returns row i as a slice aliasing the matrix storage. Mutating the
// returned slice mutates the matrix.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("mat: row %d out of range for %dx%d", i, m.Rows, m.Cols))
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	return NewFromSlice(m.Rows, m.Cols, m.Data)
}

// CopyFrom copies src into m. The dimensions must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("mat: CopyFrom dimension mismatch %dx%d vs %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	copy(m.Data, src.Data)
}

// Zero sets every entry of m to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every entry of m to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Scale multiplies every entry of m by s in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddScaled adds s*other to m in place. Dimensions must match.
func (m *Matrix) AddScaled(other *Matrix, s float64) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("mat: AddScaled dimension mismatch %dx%d vs %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	for i, v := range other.Data {
		m.Data[i] += s * v
	}
}

// Add adds other to m in place. Dimensions must match.
func (m *Matrix) Add(other *Matrix) { m.AddScaled(other, 1) }

// MulVecTo computes dst = m * x, where x has length m.Cols and dst has
// length m.Rows. dst must not alias x.
func (m *Matrix) MulVecTo(dst, x []float64) {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("mat: MulVec input length %d != cols %d", len(x), m.Cols))
	}
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("mat: MulVec output length %d != rows %d", len(dst), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var sum float64
		for j, w := range row {
			sum += w * x[j]
		}
		dst[i] = sum
	}
}

// MulVec computes and returns m * x as a fresh slice.
func (m *Matrix) MulVec(x []float64) []float64 {
	dst := make([]float64, m.Rows)
	m.MulVecTo(dst, x)
	return dst
}

// MulVecTransTo computes dst = mᵀ * x, where x has length m.Rows and dst has
// length m.Cols. dst must not alias x.
func (m *Matrix) MulVecTransTo(dst, x []float64) {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("mat: MulVecTrans input length %d != rows %d", len(x), m.Rows))
	}
	if len(dst) != m.Cols {
		panic(fmt.Sprintf("mat: MulVecTrans output length %d != cols %d", len(dst), m.Cols))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, w := range row {
			dst[j] += w * xi
		}
	}
}

// AddOuterScaled adds s * (x ⊗ y) to m in place, where x has length m.Rows
// and y has length m.Cols. This is the rank-1 update used by backprop to
// accumulate weight gradients.
func (m *Matrix) AddOuterScaled(x, y []float64, s float64) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic(fmt.Sprintf("mat: AddOuterScaled lengths (%d,%d) != %dx%d", len(x), len(y), m.Rows, m.Cols))
	}
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		f := s * xi
		for j, yj := range y {
			row[j] += f * yj
		}
	}
}

// Mul returns the matrix product m * other as a new matrix.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d * %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	out := New(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		mrow := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			krow := other.Data[k*other.Cols : (k+1)*other.Cols]
			for j, kv := range krow {
				orow[j] += mv * kv
			}
		}
	}
	return out
}

// Transpose returns mᵀ as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var sum float64
	for _, v := range m.Data {
		sum += v * v
	}
	return math.Sqrt(sum)
}

// Equal reports whether m and other have identical dimensions and entries
// within the given absolute tolerance.
func (m *Matrix) Equal(other *Matrix, tol float64) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-other.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders m for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	b.Grow(16 + 8*len(m.Data))
	fmt.Fprintf(&b, "Matrix(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.4g", m.At(i, j))
		}
	}
	b.WriteByte(']')
	return b.String()
}
