package mat

import (
	"fmt"
	"sync"
)

// This file contains the batched (matrix-matrix) kernels behind the
// minibatch training path. They are destination-passing and allocation-free
// in steady state: MulTo packs its right operand into a transposed scratch
// buffer (caller-owned via MulToBuf, or drawn from a pool), so every inner
// loop is a contiguous dot product of two row-major rows. Large products
// are tiled over rows and fanned across the parallel kernel pool — see
// pgemm.go — without changing any per-entry arithmetic.
//
// Numerically, every kernel accumulates along the shared dimension in
// ascending order — the same order the per-sample kernels (MulVecTo,
// MulVecTransTo, AddOuterScaled) use — so batched results match a sequence
// of per-sample calls to within floating-point noise at the -0.0 edge
// cases, and typically bit-for-bit.

// gemmBlock is the row-block size for the packed right operand: one block
// of Bᵀ rows is kept hot in cache while every row of A streams past it.
const gemmBlock = 64

// Epilogue post-processes completed output rows inside a GEMM — the fused
// bias-add + activation hook. ApplyRow is called exactly once per output
// row, after the row's dot products are final, while the row is still
// cache-hot; rows may be processed concurrently from kernel workers, so
// ApplyRow must only touch row-local data (and read-only shared state).
type Epilogue interface {
	ApplyRow(i int, row []float64)
}

var gemmScratch = sync.Pool{
	New: func() any { s := make([]float64, 0, 4096); return &s },
}

func getScratch(n int) *[]float64 {
	sp := gemmScratch.Get().(*[]float64)
	if cap(*sp) < n {
		*sp = make([]float64, n)
	}
	*sp = (*sp)[:n]
	return sp
}

// growBuf resizes *buf to length n, reusing its backing array when large
// enough.
func growBuf(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// MulTo computes dst = a · b, where a is m×k, b is k×n, and dst is m×n.
// dst must not alias a or b. The implementation packs b into a transposed
// scratch layout once and then performs blocked row-by-row dot products,
// which keeps all three operands on unit-stride access.
func (dst *Matrix) MulTo(a, b *Matrix) {
	k, n := b.Rows, b.Cols
	sp := getScratch(k * n)
	dst.mulPacked(a, b, *sp, nil)
	gemmScratch.Put(sp)
}

// MulToBuf is MulTo packing b into the caller-owned buffer *buf (grown as
// needed) instead of pool scratch, so steady-state callers that hold a
// buffer per product shape stay allocation-free. The optional epilogue is
// fused into the kernel (nil for none).
func (dst *Matrix) MulToBuf(a, b *Matrix, buf *[]float64, ep Epilogue) {
	dst.mulPacked(a, b, growBuf(buf, b.Rows*b.Cols), ep)
}

func (dst *Matrix) mulPacked(a, b *Matrix, bt []float64, ep Epilogue) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MulTo inner dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulTo destination %dx%d != %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	k, n := b.Rows, b.Cols
	for i := 0; i < k; i++ {
		row := b.Data[i*n : (i+1)*n]
		for j, v := range row {
			bt[j*k+i] = v
		}
	}
	gemm(dst, a, bt, n, ep)
}

// MulTransTo computes dst = a · bᵀ, where a is m×k, b is n×k, and dst is
// m×n. dst must not alias a or b. b is already in the transposed layout the
// kernel wants, so no packing is needed; this is the forward-pass shape
// (inputs · weightsᵀ) and the reason layer weights are stored out×in.
func (dst *Matrix) MulTransTo(a, b *Matrix) {
	dst.MulTransEpilogueTo(a, b, nil)
}

// MulTransEpilogueTo is MulTransTo with an epilogue fused into the kernel:
// ep.ApplyRow runs on each output row right after its dot products
// complete (bias add + activation without a second pass over dst). A nil
// epilogue is a plain product.
func (dst *Matrix) MulTransEpilogueTo(a, b *Matrix, ep Epilogue) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulTransTo inner dimension mismatch %dx%d * (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MulTransTo destination %dx%d != %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	gemm(dst, a, b.Data, b.Rows, ep)
}

// mulPackedTransRows computes rows [r0, r1) of dst = a · btᵀ, where bt
// holds n rows of length a.Cols (i.e. the right operand already
// transposed). Rows of bt are processed in blocks so a block stays
// cache-resident while the tile's rows of a stream through it; within a
// block a 2×4 register micro-kernel shares each loaded element across up
// to eight accumulator chains. Every output entry is one plain
// ascending-order dot product, so results are bit-identical to the
// per-sample kernels — and independent of how the row range is tiled.
func mulPackedTransRows(dst, a *Matrix, bt []float64, n, r0, r1 int) {
	k := a.Cols
	for j0 := 0; j0 < n; j0 += gemmBlock {
		j1 := j0 + gemmBlock
		if j1 > n {
			j1 = n
		}
		i := r0
		for ; i+1 < r1; i += 2 {
			// Reslicing every row to an explicit length k lets the
			// compiler prove p < len(...) and drop the bounds checks in
			// the micro-kernel.
			a0 := a.Data[i*k:][:k]
			a1 := a.Data[(i+1)*k:][:k]
			d0 := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
			d1 := dst.Data[(i+1)*dst.Cols : (i+2)*dst.Cols]
			j := j0
			for ; j+3 < j1; j += 4 {
				b0 := bt[j*k:][:k]
				b1 := bt[(j+1)*k:][:k]
				b2 := bt[(j+2)*k:][:k]
				b3 := bt[(j+3)*k:][:k]
				var s00, s01, s02, s03, s10, s11, s12, s13 float64
				for p := 0; p < k; p++ {
					av0, av1 := a0[p], a1[p]
					bv0, bv1, bv2, bv3 := b0[p], b1[p], b2[p], b3[p]
					s00 += av0 * bv0
					s01 += av0 * bv1
					s02 += av0 * bv2
					s03 += av0 * bv3
					s10 += av1 * bv0
					s11 += av1 * bv1
					s12 += av1 * bv2
					s13 += av1 * bv3
				}
				d0[j], d0[j+1], d0[j+2], d0[j+3] = s00, s01, s02, s03
				d1[j], d1[j+1], d1[j+2], d1[j+3] = s10, s11, s12, s13
			}
			for ; j < j1; j++ {
				brow := bt[j*k:][:k]
				var s0, s1 float64
				for p := 0; p < k; p++ {
					s0 += a0[p] * brow[p]
					s1 += a1[p] * brow[p]
				}
				d0[j], d1[j] = s0, s1
			}
		}
		if i < r1 {
			arow := a.Data[i*k:][:k]
			drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
			for j := j0; j < j1; j++ {
				brow := bt[j*k:][:k]
				var sum float64
				for p := 0; p < k; p++ {
					sum += arow[p] * brow[p]
				}
				drow[j] = sum
			}
		}
	}
}

// applyEpilogueRows runs ep over rows [r0, r1) of dst.
func applyEpilogueRows(ep Epilogue, dst *Matrix, r0, r1 int) {
	if ep == nil {
		return
	}
	for r := r0; r < r1; r++ {
		ep.ApplyRow(r, dst.Data[r*dst.Cols:][:dst.Cols])
	}
}

// AddMulATBScaled accumulates dst += s · aᵀ · b, where a is p×m, b is p×n,
// and dst is m×n. This is the batched rank-k update backprop uses to fold a
// whole minibatch of outer products into a weight gradient: with a = dPre
// (batch×out) and b = inputs (batch×in) it is exactly batch sequential
// AddOuterScaled calls, performed in the same sample order.
func (dst *Matrix) AddMulATBScaled(a, b *Matrix, s float64) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: AddMulATBScaled batch mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: AddMulATBScaled destination %dx%d != %dx%d", dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
	rankUpdate(dst, a, b, s)
}

// addMulATBScaledRows accumulates rows [i0, i1) of dst += s · aᵀ · b. The
// adds are explicitly left-associated with samples folded two at a time,
// so each dst entry sees the samples in exactly the ascending order
// sequential AddOuterScaled calls would apply them — for any row tiling.
func addMulATBScaledRows(dst, a, b *Matrix, s float64, i0, i1 int) {
	m, n := a.Cols, b.Cols
	// Two samples per pass halves the read/write traffic on dst.
	r := 0
	for ; r+1 < a.Rows; r += 2 {
		a0 := a.Data[r*m:][:m]
		a1 := a.Data[(r+1)*m:][:m]
		b0 := b.Data[r*n:][:n]
		b1 := b.Data[(r+1)*n:][:n]
		for i := i0; i < i1; i++ {
			f0, f1 := s*a0[i], s*a1[i]
			if f0 == 0 && f1 == 0 {
				continue
			}
			drow := dst.Data[i*n:][:n]
			for j := 0; j < n; j++ {
				drow[j] = (drow[j] + f0*b0[j]) + f1*b1[j]
			}
		}
	}
	if r < a.Rows {
		arow := a.Data[r*m : (r+1)*m]
		brow := b.Data[r*n : (r+1)*n]
		for i := i0; i < i1; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			f := s * av
			drow := dst.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				drow[j] += f * bv
			}
		}
	}
}

// AddColumnSumsScaled accumulates dst[j] += s · Σ_i m[i][j] — the batched
// bias-gradient reduction (each row is one sample's dPre). Rows are folded
// in ascending order to match sequential per-sample accumulation.
func (m *Matrix) AddColumnSumsScaled(dst []float64, s float64) {
	if len(dst) != m.Cols {
		panic(fmt.Sprintf("mat: AddColumnSumsScaled length %d != cols %d", len(dst), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			dst[j] += s * v
		}
	}
}

// AddRowVector adds v to every row of m in place (broadcast add, used for
// layer biases on a batched pre-activation).
func (m *Matrix) AddRowVector(v []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("mat: AddRowVector length %d != cols %d", len(v), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, bv := range v {
			row[j] += bv
		}
	}
}
