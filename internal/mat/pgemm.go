package mat

import (
	"sync"

	"miras/internal/parallel"
)

// Parallel dispatch for the GEMM-shaped kernels. Large products are
// decomposed into destination row tiles and fanned across
// parallel.Kernel's persistent pool; small products (and all products when
// only one worker is available) run the original untiled serial loop,
// which streams the packed right operand exactly once.
//
// Determinism: tiles own disjoint destination rows, and every output
// entry is computed by exactly the arithmetic the serial kernel uses —
// one ascending-order accumulation chain whose shape does not depend on
// the tiling. Results are therefore bit-identical to serial execution for
// any GOMAXPROCS / SetMaxWorkers setting, even though the tile count is
// sized from the worker count for cache economy (each extra tile re-reads
// the shared operand once more, so tiles ≈ 2·workers keeps per-worker
// traffic near serial levels while leaving stealing slack). pgemm_test.go
// pins bit-identity across worker counts.

// minParallelFlops gates parallel dispatch on problem size (counted as
// 2·m·n·k multiply-adds). At ~10 GFLOP/s per core the threshold is ~13 µs
// of work — several times the fork-join round trip.
const minParallelFlops = 1 << 17

// rowTileSpan returns the per-tile row count for fanning m destination
// rows across w workers: ~2 tiles per worker, rounded up to an even span
// so the 2-row micro-kernel never loses its pairing except at the final
// short tile.
func rowTileSpan(m, w int) int {
	span := (m + 2*w - 1) / (2 * w)
	span = (span + 1) &^ 1
	if span < 2 {
		span = 2
	}
	return span
}

// gemmTask is a reusable launch descriptor for dst = a · btᵀ (+ epilogue).
type gemmTask struct {
	dst, a *Matrix
	bt     []float64
	n      int
	ep     Epilogue
	span   int
}

func (t *gemmTask) RunTile(tile int) {
	r0 := tile * t.span
	r1 := r0 + t.span
	if r1 > t.a.Rows {
		r1 = t.a.Rows
	}
	mulPackedTransRows(t.dst, t.a, t.bt, t.n, r0, r1)
	applyEpilogueRows(t.ep, t.dst, r0, r1)
}

var gemmTasks = sync.Pool{New: func() any { return new(gemmTask) }}

// gemm computes dst = a · btᵀ then applies ep row-wise, tiling over dst
// rows when the product is large enough to pay for the fan-out and more
// than one worker is available.
func gemm(dst, a *Matrix, bt []float64, n int, ep Epilogue) {
	m, k := a.Rows, a.Cols
	w := parallel.MaxWorkers()
	if w <= 1 || m < 4 || 2*m*n*k < minParallelFlops {
		mulPackedTransRows(dst, a, bt, n, 0, m)
		applyEpilogueRows(ep, dst, 0, m)
		return
	}
	t := gemmTasks.Get().(*gemmTask)
	t.dst, t.a, t.bt, t.n, t.ep = dst, a, bt, n, ep
	t.span = rowTileSpan(m, w)
	parallel.Kernel((m+t.span-1)/t.span, t)
	*t = gemmTask{}
	gemmTasks.Put(t)
}

// rankTask is a reusable launch descriptor for dst += s · aᵀ · b.
type rankTask struct {
	dst, a, b *Matrix
	s         float64
	span      int
}

func (t *rankTask) RunTile(tile int) {
	i0 := tile * t.span
	i1 := i0 + t.span
	if i1 > t.dst.Rows {
		i1 = t.dst.Rows
	}
	addMulATBScaledRows(t.dst, t.a, t.b, t.s, i0, i1)
}

var rankTasks = sync.Pool{New: func() any { return new(rankTask) }}

// rankUpdate accumulates dst += s · aᵀ · b, tiling over dst rows when the
// update is large enough and more than one worker is available. Each dst
// row is owned by one tile and folds the minibatch in ascending sample
// order, so accumulation is bit-identical to the serial kernel for any
// worker count.
func rankUpdate(dst, a, b *Matrix, s float64) {
	m, n := a.Cols, b.Cols
	w := parallel.MaxWorkers()
	if w <= 1 || m < 4 || 2*a.Rows*m*n < minParallelFlops {
		addMulATBScaledRows(dst, a, b, s, 0, m)
		return
	}
	t := rankTasks.Get().(*rankTask)
	t.dst, t.a, t.b, t.s = dst, a, b, s
	t.span = rowTileSpan(m, w)
	parallel.Kernel((m+t.span-1)/t.span, t)
	*t = rankTask{}
	rankTasks.Put(t)
}
