package mat

import (
	"math/rand"
	"testing"
)

// naiveMul is the reference triple loop for dst = a·b.
func naiveMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var sum float64
			for k := 0; k < a.Cols; k++ {
				sum += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, sum)
		}
	}
	return out
}

func randMat(rows, cols int, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestMulToMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Spans the degenerate, sub-block, and multi-block regimes.
	shapes := [][3]int{{1, 1, 1}, {3, 5, 2}, {7, 64, 9}, {64, 13, 130}, {130, 70, 65}}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a, b := randMat(m, k, rng), randMat(k, n, rng)
		dst := New(m, n)
		dst.MulTo(a, b)
		want := naiveMul(a, b)
		if !dst.Equal(want, 1e-12) {
			t.Fatalf("MulTo %dx%d*%dx%d differs from naive product", m, k, k, n)
		}
	}
}

func TestMulToMatchesMulVecPerRow(t *testing.T) {
	// The batched kernel must reproduce the per-sample kernel: row i of
	// a·wᵀ equals w·aᵢ computed with MulVecTo, bit for bit (identical
	// accumulation order).
	rng := rand.New(rand.NewSource(2))
	a := randMat(64, 33, rng)
	w := randMat(17, 33, rng)
	dst := New(64, 17)
	dst.MulTransTo(a, w)
	vec := make([]float64, 17)
	for i := 0; i < a.Rows; i++ {
		w.MulVecTo(vec, a.Row(i))
		for j, v := range vec {
			if dst.At(i, j) != v {
				t.Fatalf("row %d col %d: MulTransTo %g != MulVecTo %g", i, j, dst.At(i, j), v)
			}
		}
	}
}

func TestMulTransToMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMat(31, 21, rng)
	b := randMat(77, 21, rng)
	dst := New(31, 77)
	dst.MulTransTo(a, b)
	want := naiveMul(a, b.Transpose())
	if !dst.Equal(want, 1e-12) {
		t.Fatal("MulTransTo differs from naive a·bᵀ")
	}
}

func TestAddMulATBScaledMatchesOuterProducts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const batch, m, n = 37, 11, 23
	a := randMat(batch, m, rng)
	b := randMat(batch, n, rng)
	got := randMat(m, n, rng)
	want := got.Clone()
	got.AddMulATBScaled(a, b, 0.5)
	for r := 0; r < batch; r++ {
		want.AddOuterScaled(a.Row(r), b.Row(r), 0.5)
	}
	if !got.Equal(want, 0) {
		t.Fatal("AddMulATBScaled differs from sequential AddOuterScaled calls")
	}
}

func TestAddColumnSumsScaled(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randMat(19, 7, rng)
	got := make([]float64, 7)
	want := make([]float64, 7)
	got[3], want[3] = 2, 2 // accumulation, not overwrite
	a.AddColumnSumsScaled(got, 1.5)
	for r := 0; r < a.Rows; r++ {
		VecAddScaled(want, a.Row(r), 1.5)
	}
	for j := range got {
		if got[j] != want[j] {
			t.Fatalf("col %d: got %g want %g", j, got[j], want[j])
		}
	}
}

func TestAddRowVector(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randMat(5, 4, rng)
	v := []float64{1, -2, 3, -4}
	want := a.Clone()
	a.AddRowVector(v)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if a.At(i, j) != want.At(i, j)+v[j] {
				t.Fatalf("(%d,%d): got %g want %g", i, j, a.At(i, j), want.At(i, j)+v[j])
			}
		}
	}
}

func TestGemmDimensionPanics(t *testing.T) {
	a, b := New(3, 4), New(5, 6)
	for name, fn := range map[string]func(){
		"MulTo inner":       func() { New(3, 6).MulTo(a, b) },
		"MulTo dst":         func() { New(2, 2).MulTo(a, New(4, 6)) },
		"MulTransTo inner":  func() { New(3, 5).MulTransTo(a, b) },
		"AddMulATBScaled":   func() { New(4, 6).AddMulATBScaled(a, b, 1) },
		"AddColumnSums len": func() { a.AddColumnSumsScaled(make([]float64, 3), 1) },
		"AddRowVector len":  func() { a.AddRowVector(make([]float64, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMatrixStringFormat(t *testing.T) {
	m := NewFromSlice(2, 2, []float64{1, 2.5, -3, 4})
	got := m.String()
	want := "Matrix(2x2)[1 2.5; -3 4]"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
