package workflow

import (
	"strings"
	"testing"
)

func TestTypeWriteDOT(t *testing.T) {
	e := NewMSD()
	wf, _ := e.WorkflowByName("Type3")
	var sb strings.Builder
	if err := wf.WriteDOT(&sb, e); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`digraph "Type3"`, "Extract", "Render", "n0 -> n1", "n0 -> n2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestTypeWriteDOTWithoutEnsemble(t *testing.T) {
	wf := MustType("w", []Node{{Task: 0, Name: "custom"}, {Task: 0}}, [][]int{{1}, {}})
	var sb strings.Builder
	if err := wf.WriteDOT(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "custom") {
		t.Fatalf("DOT output missing node name:\n%s", sb.String())
	}
}

func TestEnsembleWriteDOT(t *testing.T) {
	e := NewLIGO()
	var sb strings.Builder
	if err := e.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"cluster_0", "cluster_3", "DataFind", "Coire", "Injection"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ensemble DOT missing %q", want)
		}
	}
	// Every workflow is a subgraph.
	if got := strings.Count(out, "subgraph"); got != 4 {
		t.Fatalf("subgraphs=%d, want 4", got)
	}
}
