package workflow

import "fmt"

// TDS is the Task Dependency Service: the component that, in the paper's
// infrastructure, is a ZooKeeper ensemble storing the task-dependency table
// (Figure 2). The workflow invoker asks it which task(s) of a workflow run
// first, and each task consumer asks it which task(s) follow the one it just
// finished.
//
// In this reproduction the TDS is an in-process lookup over validated
// workflow DAGs. The replication count is retained for interface fidelity —
// queries are served by a (simulated) replica chosen round-robin — but
// consistency concerns are out of scope, exactly as they are in the paper's
// evaluation.
type TDS struct {
	ensemble *Ensemble
	replicas int
	next     int
	queries  uint64
}

// NewTDS returns a TDS over the given ensemble with the given replica count
// (the paper uses 3 ZooKeeper nodes).
func NewTDS(e *Ensemble, replicas int) (*TDS, error) {
	if err := e.Validate(); err != nil {
		return nil, fmt.Errorf("tds: %w", err)
	}
	if replicas < 1 {
		return nil, fmt.Errorf("tds: need at least 1 replica, got %d", replicas)
	}
	return &TDS{ensemble: e, replicas: replicas}, nil
}

// Ensemble returns the ensemble this TDS serves.
func (t *TDS) Ensemble() *Ensemble { return t.ensemble }

// InitialNodes answers "which task(s) of workflow type wf should be
// processed first" — step 1 in Figure 1 of the paper.
func (t *TDS) InitialNodes(wf int) []int {
	t.record()
	return t.ensemble.Workflows[wf].Roots()
}

// SuccessorNodes answers "which task(s) follow node within workflow wf" —
// the query a consumer issues after finishing a request (step 4).
func (t *TDS) SuccessorNodes(wf, node int) []int {
	t.record()
	return t.ensemble.Workflows[wf].Successors(node)
}

// PredecessorCount returns how many predecessors node has within workflow
// wf; the invoker uses it for join synchronisation.
func (t *TDS) PredecessorCount(wf, node int) int {
	t.record()
	return len(t.ensemble.Workflows[wf].Predecessors(node))
}

// TaskOf returns the task type that node of workflow wf executes.
func (t *TDS) TaskOf(wf, node int) TaskType {
	t.record()
	return t.ensemble.Workflows[wf].Nodes[node].Task
}

// Queries returns the total number of TDS lookups served, mirroring the
// real system's observable query load.
func (t *TDS) Queries() uint64 { return t.queries }

// record advances the round-robin replica pointer and counts the query.
func (t *TDS) record() {
	t.next = (t.next + 1) % t.replicas
	t.queries++
}
