package workflow

import (
	"strings"
	"testing"
)

func TestCheckConsistencyHoldsForBuiltins(t *testing.T) {
	for _, ens := range []*Ensemble{NewMSD(), NewLIGO(), Toy()} {
		for _, wf := range ens.Workflows {
			if err := wf.CheckConsistency(); err != nil {
				t.Fatalf("%s/%s: %v", ens.Name, wf.Name, err)
			}
		}
	}
}

func TestCheckConsistencyDetectsCorruption(t *testing.T) {
	fresh := func() *Type {
		// Diamond: 0 → {1,2} → 3.
		return MustType("diamond",
			[]Node{{Task: 0}, {Task: 0}, {Task: 0}, {Task: 0}},
			[][]int{{1, 2}, {3}, {3}, {}})
	}

	t.Run("phantom edge", func(t *testing.T) {
		wf := fresh()
		wf.Edges[3] = append(wf.Edges[3], 1) // preds/order no longer match
		err := wf.CheckConsistency()
		if err == nil {
			t.Fatal("corruption undetected")
		}
		if !strings.Contains(err.Error(), "diamond") {
			t.Fatalf("error %q does not name the workflow", err)
		}
	})

	t.Run("mangled predecessor list", func(t *testing.T) {
		wf := fresh()
		wf.preds[3] = wf.preds[3][:1] // join count for node 3 now wrong
		if wf.CheckConsistency() == nil {
			t.Fatal("corruption undetected")
		}
	})

	t.Run("shuffled topo order", func(t *testing.T) {
		wf := fresh()
		wf.order[0], wf.order[len(wf.order)-1] = wf.order[len(wf.order)-1], wf.order[0]
		if wf.CheckConsistency() == nil {
			t.Fatal("corruption undetected")
		}
	})

	t.Run("bogus root", func(t *testing.T) {
		wf := fresh()
		wf.roots = append(wf.roots, 3)
		if wf.CheckConsistency() == nil {
			t.Fatal("corruption undetected")
		}
	})
}
