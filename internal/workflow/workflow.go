// Package workflow models scientific workflows as directed acyclic graphs of
// task nodes and provides the Task Dependency Service (TDS) that the
// microservice workflow infrastructure consults for DAG topology.
//
// Terminology follows §II of the paper: an Ensemble supports N workflow
// types composed from J task types. Each task type is realised by one
// microservice (a queue plus a pool of consumers); each workflow type is a
// DAG whose nodes are instances of task types. A workflow may use the same
// task type at several nodes, and different workflows may share task types —
// the sharing is what produces the cascading resource-allocation effects the
// paper highlights.
package workflow

import (
	"fmt"
)

// TaskType identifies one microservice (task) type within an ensemble,
// in the range [0, J).
type TaskType int

// TaskDef describes one task type's service characteristics. Service times
// in the emulation are log-normal with the given mean and coefficient of
// variation, reproducing the paper's "processing time of each microservice
// is not fixed, due to variant sizes of input data".
type TaskDef struct {
	// Name is the human-readable task name (e.g. "Inspiral").
	Name string
	// MeanServiceSec is the mean per-request processing time in seconds
	// for a single consumer.
	MeanServiceSec float64
	// ServiceCV is the coefficient of variation of the service time.
	ServiceCV float64
}

// Node is one vertex of a workflow DAG: an instance of a task type.
type Node struct {
	// Task is the task type this node executes.
	Task TaskType
	// Name optionally labels the node; defaults to the task name.
	Name string
}

// Type is one workflow type: a DAG over task-type nodes.
type Type struct {
	// Name is the workflow type's name (e.g. "CAT").
	Name string
	// Nodes are the DAG vertices.
	Nodes []Node
	// Edges is the adjacency list: Edges[i] lists the successor node
	// indices of node i.
	Edges [][]int

	preds [][]int
	roots []int
	order []int // topological order
}

// NewType builds and validates a workflow type. It returns an error if the
// graph has out-of-range edges, is cyclic, or has no nodes.
func NewType(name string, nodes []Node, edges [][]int) (*Type, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("workflow %q: no nodes", name)
	}
	if len(edges) != len(nodes) {
		return nil, fmt.Errorf("workflow %q: %d edge lists for %d nodes", name, len(edges), len(nodes))
	}
	t := &Type{Name: name, Nodes: nodes, Edges: edges}
	t.preds = make([][]int, len(nodes))
	indeg := make([]int, len(nodes))
	for from, succs := range edges {
		seen := map[int]bool{}
		for _, to := range succs {
			if to < 0 || to >= len(nodes) {
				return nil, fmt.Errorf("workflow %q: edge %d→%d out of range", name, from, to)
			}
			if to == from {
				return nil, fmt.Errorf("workflow %q: self-loop at node %d", name, from)
			}
			if seen[to] {
				return nil, fmt.Errorf("workflow %q: duplicate edge %d→%d", name, from, to)
			}
			seen[to] = true
			t.preds[to] = append(t.preds[to], from)
			indeg[to]++
		}
	}
	// Kahn's algorithm: topological order doubles as the cycle check.
	var queue []int
	remaining := append([]int(nil), indeg...)
	for i, d := range remaining {
		if d == 0 {
			queue = append(queue, i)
			t.roots = append(t.roots, i)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		t.order = append(t.order, n)
		for _, succ := range edges[n] {
			remaining[succ]--
			if remaining[succ] == 0 {
				queue = append(queue, succ)
			}
		}
	}
	if len(t.order) != len(nodes) {
		return nil, fmt.Errorf("workflow %q: graph contains a cycle", name)
	}
	return t, nil
}

// MustType is NewType that panics on error, for the static ensemble tables.
func MustType(name string, nodes []Node, edges [][]int) *Type {
	t, err := NewType(name, nodes, edges)
	if err != nil {
		panic(err)
	}
	return t
}

// CheckConsistency re-verifies the invariants NewType established: the
// predecessor lists mirror Edges exactly, the roots are precisely the
// zero-indegree nodes, and the cached topological order is a valid ordering
// covering every node. It exists for the runtime-invariant layer
// (internal/invariant): the emulated cluster's join synchronisation counts
// down Predecessors, so silent corruption of these caches would deadlock or
// double-publish DAG nodes without failing any existing test.
func (t *Type) CheckConsistency() error {
	n := len(t.Nodes)
	if len(t.Edges) != n || len(t.preds) != n {
		return fmt.Errorf("workflow %q: %d nodes, %d edge lists, %d pred lists",
			t.Name, n, len(t.Edges), len(t.preds))
	}
	// Rebuild indegrees from Edges and mirror-check preds.
	indeg := make([]int, n)
	for from, succs := range t.Edges {
		for _, to := range succs {
			if to < 0 || to >= n {
				return fmt.Errorf("workflow %q: edge %d→%d out of range", t.Name, from, to)
			}
			indeg[to]++
			found := false
			for _, p := range t.preds[to] {
				if p == from {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("workflow %q: edge %d→%d missing from predecessor list", t.Name, from, to)
			}
		}
	}
	for i, preds := range t.preds {
		if len(preds) != indeg[i] {
			return fmt.Errorf("workflow %q: node %d has %d predecessors, indegree %d",
				t.Name, i, len(preds), indeg[i])
		}
	}
	// Roots are exactly the zero-indegree nodes.
	rootSet := make(map[int]bool, len(t.roots))
	for _, r := range t.roots {
		rootSet[r] = true
	}
	for i, d := range indeg {
		if (d == 0) != rootSet[i] {
			return fmt.Errorf("workflow %q: node %d indegree %d but root=%v",
				t.Name, i, d, rootSet[i])
		}
	}
	// The cached order is a permutation respecting every edge.
	if len(t.order) != n {
		return fmt.Errorf("workflow %q: topo order covers %d of %d nodes", t.Name, len(t.order), n)
	}
	pos := make([]int, n)
	seen := make([]bool, n)
	for i, node := range t.order {
		if node < 0 || node >= n || seen[node] {
			return fmt.Errorf("workflow %q: topo order is not a permutation", t.Name)
		}
		seen[node] = true
		pos[node] = i
	}
	for from, succs := range t.Edges {
		for _, to := range succs {
			if pos[from] >= pos[to] {
				return fmt.Errorf("workflow %q: topo order places %d after successor %d", t.Name, from, to)
			}
		}
	}
	return nil
}

// Roots returns the indices of nodes with no predecessors — the tasks the
// workflow invoker submits first.
func (t *Type) Roots() []int { return t.roots }

// Successors returns the successor node indices of node i.
func (t *Type) Successors(i int) []int { return t.Edges[i] }

// Predecessors returns the predecessor node indices of node i.
func (t *Type) Predecessors(i int) []int { return t.preds[i] }

// TopoOrder returns a topological ordering of the node indices.
func (t *Type) TopoOrder() []int { return t.order }

// NumNodes returns the number of DAG vertices.
func (t *Type) NumNodes() int { return len(t.Nodes) }

// UsesTask reports whether any node of the workflow runs task type j.
func (t *Type) UsesTask(j TaskType) bool {
	for _, n := range t.Nodes {
		if n.Task == j {
			return true
		}
	}
	return false
}

// CriticalPathLength returns the length of the longest path through the DAG
// weighted by the given per-task-type costs. Baseline schedulers (HEFT) use
// this for ranking.
func (t *Type) CriticalPathLength(cost func(TaskType) float64) float64 {
	longest := make([]float64, len(t.Nodes))
	var max float64
	// Traverse in reverse topological order so successors are done first.
	for i := len(t.order) - 1; i >= 0; i-- {
		n := t.order[i]
		var best float64
		for _, succ := range t.Edges[n] {
			if longest[succ] > best {
				best = longest[succ]
			}
		}
		longest[n] = cost(t.Nodes[n].Task) + best
		if longest[n] > max {
			max = longest[n]
		}
	}
	return max
}

// Ensemble is a family of workflow types over a shared set of task types —
// the unit the paper calls a "workflow computing ensemble" (MSD, LIGO).
type Ensemble struct {
	// Name identifies the ensemble ("msd", "ligo").
	Name string
	// Tasks defines the J task types.
	Tasks []TaskDef
	// Workflows defines the N workflow types.
	Workflows []*Type
}

// Validate checks internal consistency: every node's task type must be in
// range and every task type must be used by at least one workflow.
func (e *Ensemble) Validate() error {
	if len(e.Tasks) == 0 || len(e.Workflows) == 0 {
		return fmt.Errorf("ensemble %q: empty tasks or workflows", e.Name)
	}
	used := make([]bool, len(e.Tasks))
	for _, wf := range e.Workflows {
		for i, n := range wf.Nodes {
			if int(n.Task) < 0 || int(n.Task) >= len(e.Tasks) {
				return fmt.Errorf("ensemble %q: workflow %q node %d has task %d out of range",
					e.Name, wf.Name, i, n.Task)
			}
			used[n.Task] = true
		}
	}
	for j, u := range used {
		if !u {
			return fmt.Errorf("ensemble %q: task type %q is unused", e.Name, e.Tasks[j].Name)
		}
	}
	return nil
}

// NumTasks returns J, the number of task types (microservices).
func (e *Ensemble) NumTasks() int { return len(e.Tasks) }

// NumWorkflows returns N, the number of workflow types.
func (e *Ensemble) NumWorkflows() int { return len(e.Workflows) }

// WorkflowByName returns the workflow type with the given name.
func (e *Ensemble) WorkflowByName(name string) (*Type, error) {
	for _, wf := range e.Workflows {
		if wf.Name == name {
			return wf, nil
		}
	}
	return nil, fmt.Errorf("ensemble %q: no workflow %q", e.Name, name)
}

// TaskNames returns the task names in task-type order.
func (e *Ensemble) TaskNames() []string {
	names := make([]string, len(e.Tasks))
	for i, t := range e.Tasks {
		names[i] = t.Name
	}
	return names
}

// WorkflowNames returns the workflow names in workflow-type order.
func (e *Ensemble) WorkflowNames() []string {
	names := make([]string, len(e.Workflows))
	for i, w := range e.Workflows {
		names[i] = w.Name
	}
	return names
}
