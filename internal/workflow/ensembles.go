package workflow

// This file defines the two workflow computing ensembles the paper
// evaluates on (§VI-A1):
//
//   - MSD: Material Science Data processing — 3 workflow types (Type1,
//     Type2, Type3) over 4 task types.
//   - LIGO: Laser Interferometer Gravitational Wave Observatory — 4
//     workflow types (DataFind, CAT, Full, Injection) over 9 task types.
//
// The paper gives the type/task counts, the workflow names, Poisson
// arrivals, and mentions the LIGO task "Coire"; it does not publish the
// exact DAG edge lists or per-task service-time distributions. The DAGs
// below are reconstructed from those constraints plus the LIGO Inspiral
// pipeline structure characterised by Juve et al. (FGCS 2013), which the
// paper cites as the source of the LIGO ensemble. Service-time means are
// chosen so a workflow takes tens of virtual seconds — matching the paper's
// statement that one control interaction takes tens of seconds to minutes —
// and so the consumer budgets used in the paper (14 for MSD, 30 for LIGO)
// are tight but feasible, as §VI-A4 requires. These are documented
// substitutions; see DESIGN.md §1.

// MSD task type indices.
const (
	MSDExtract TaskType = iota // A: microscopy image extraction/ingest
	MSDAlign                   // B: image alignment/registration
	MSDSegment                 // C: segmentation/feature analysis
	MSDRender                  // D: visualisation/rendering
)

// NewMSD builds the Material Science Data processing ensemble: 3 workflow
// types over 4 task types, with shared upstream tasks so that allocation
// decisions on one microservice cascade into several workflows.
func NewMSD() *Ensemble {
	tasks := []TaskDef{
		{Name: "Extract", MeanServiceSec: 2.0, ServiceCV: 0.4},
		{Name: "Align", MeanServiceSec: 3.0, ServiceCV: 0.4},
		{Name: "Segment", MeanServiceSec: 2.5, ServiceCV: 0.5},
		{Name: "Render", MeanServiceSec: 1.5, ServiceCV: 0.3},
	}
	node := func(t TaskType) Node { return Node{Task: t} }
	// Type1: Extract → Align → Segment (pure pipeline).
	type1 := MustType("Type1",
		[]Node{node(MSDExtract), node(MSDAlign), node(MSDSegment)},
		[][]int{{1}, {2}, {}})
	// Type2: Extract → Align → Render (shares Extract and Align with Type1).
	type2 := MustType("Type2",
		[]Node{node(MSDExtract), node(MSDAlign), node(MSDRender)},
		[][]int{{1}, {2}, {}})
	// Type3: Extract → (Align ∥ Segment) → Render (fork-join; the join is
	// the synchronisation case called out in §II-C challenge 2).
	type3 := MustType("Type3",
		[]Node{node(MSDExtract), node(MSDAlign), node(MSDSegment), node(MSDRender)},
		[][]int{{1, 2}, {3}, {3}, {}})
	return &Ensemble{
		Name:      "msd",
		Tasks:     tasks,
		Workflows: []*Type{type1, type2, type3},
	}
}

// LIGO task type indices.
const (
	LIGODataFind  TaskType = iota // locate interferometer data frames
	LIGOTmpltBank                 // build template banks
	LIGOInspiral                  // matched-filter inspiral search
	LIGOThinca                    // coincidence analysis
	LIGOTrigBank                  // triggered template banks
	LIGOInspVeto                  // inspiral veto stage
	LIGOSire                      // single-ifo result extraction
	LIGOCoire                     // coincident result extraction
	LIGOInjGen                    // simulated-signal injection generation
)

// NewLIGO builds the LIGO ensemble: 4 workflow types (DataFind, CAT, Full,
// Injection) over 9 task types, following the LIGO Inspiral pipeline stages
// of Juve et al. The Coire task — which the paper observes MIRAS learns to
// defer under large bursts (§VI-D) — terminates the CAT, Full, and
// Injection workflows.
func NewLIGO() *Ensemble {
	tasks := []TaskDef{
		{Name: "DataFind", MeanServiceSec: 3.0, ServiceCV: 0.3},
		{Name: "TmpltBank", MeanServiceSec: 6.0, ServiceCV: 0.4},
		{Name: "Inspiral", MeanServiceSec: 9.0, ServiceCV: 0.5},
		{Name: "Thinca", MeanServiceSec: 4.0, ServiceCV: 0.4},
		{Name: "TrigBank", MeanServiceSec: 3.5, ServiceCV: 0.4},
		{Name: "InspVeto", MeanServiceSec: 7.0, ServiceCV: 0.5},
		{Name: "Sire", MeanServiceSec: 3.0, ServiceCV: 0.3},
		{Name: "Coire", MeanServiceSec: 5.0, ServiceCV: 0.4},
		{Name: "InjGen", MeanServiceSec: 2.5, ServiceCV: 0.3},
	}
	node := func(t TaskType) Node { return Node{Task: t} }

	// DataFind: the data-discovery workflow — a short pipeline that locates
	// frames and prepares template banks for a following search.
	dataFind := MustType("DataFind",
		[]Node{node(LIGODataFind), node(LIGOTmpltBank), node(LIGOInspiral)},
		[][]int{{1}, {2}, {}})

	// CAT: category-veto analysis — first-pass search ending in single- and
	// coincident-result extraction.
	// DataFind → TmpltBank → Inspiral → Thinca → (Sire ∥ Coire-after-Sire)
	cat := MustType("CAT",
		[]Node{
			node(LIGODataFind),  // 0
			node(LIGOTmpltBank), // 1
			node(LIGOInspiral),  // 2
			node(LIGOThinca),    // 3
			node(LIGOSire),      // 4
			node(LIGOCoire),     // 5
		},
		[][]int{{1}, {2}, {3}, {4}, {5}, {}})

	// Full: the two-stage pipeline with the veto branch — after first
	// coincidence, a triggered bank feeds the veto stage in parallel with
	// single-ifo extraction; both join at Coire.
	full := MustType("Full",
		[]Node{
			node(LIGODataFind),  // 0
			node(LIGOTmpltBank), // 1
			node(LIGOInspiral),  // 2
			node(LIGOThinca),    // 3
			node(LIGOTrigBank),  // 4
			node(LIGOInspVeto),  // 5
			node(LIGOSire),      // 6
			node(LIGOCoire),     // 7
		},
		[][]int{{1}, {2}, {3}, {4, 6}, {5}, {7}, {7}, {}})

	// Injection: software-injection run — generated signals go through the
	// search and finish at Coire.
	injection := MustType("Injection",
		[]Node{
			node(LIGOInjGen),   // 0
			node(LIGOInspiral), // 1
			node(LIGOThinca),   // 2
			node(LIGOCoire),    // 3
		},
		[][]int{{1}, {2}, {3}, {}})

	return &Ensemble{
		Name:      "ligo",
		Tasks:     tasks,
		Workflows: []*Type{dataFind, cat, full, injection},
	}
}

// Toy returns a deliberately tiny ensemble — 2 task types, 1 two-node
// pipeline workflow — used by integration tests that need full training
// loops to run in milliseconds.
func Toy() *Ensemble {
	tasks := []TaskDef{
		{Name: "Stage1", MeanServiceSec: 2.0, ServiceCV: 0.2},
		{Name: "Stage2", MeanServiceSec: 2.0, ServiceCV: 0.2},
	}
	wf := MustType("Pipeline",
		[]Node{{Task: 0}, {Task: 1}},
		[][]int{{1}, {}})
	return &Ensemble{Name: "toy", Tasks: tasks, Workflows: []*Type{wf}}
}

// ByName returns the built-in ensemble with the given name ("msd", "ligo",
// or "toy").
func ByName(name string) (*Ensemble, bool) {
	switch name {
	case "msd":
		return NewMSD(), true
	case "ligo":
		return NewLIGO(), true
	case "toy":
		return Toy(), true
	default:
		return nil, false
	}
}
