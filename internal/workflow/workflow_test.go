package workflow

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewTypeRejectsEmptyGraph(t *testing.T) {
	if _, err := NewType("x", nil, nil); err == nil {
		t.Fatal("expected error for empty node list")
	}
}

func TestNewTypeRejectsEdgeListMismatch(t *testing.T) {
	if _, err := NewType("x", []Node{{Task: 0}}, [][]int{{}, {}}); err == nil {
		t.Fatal("expected error for edge list length mismatch")
	}
}

func TestNewTypeRejectsOutOfRangeEdge(t *testing.T) {
	if _, err := NewType("x", []Node{{Task: 0}, {Task: 1}}, [][]int{{5}, {}}); err == nil {
		t.Fatal("expected error for out-of-range edge")
	}
}

func TestNewTypeRejectsSelfLoop(t *testing.T) {
	if _, err := NewType("x", []Node{{Task: 0}}, [][]int{{0}}); err == nil {
		t.Fatal("expected error for self loop")
	}
}

func TestNewTypeRejectsCycle(t *testing.T) {
	if _, err := NewType("x", []Node{{Task: 0}, {Task: 1}}, [][]int{{1}, {0}}); err == nil {
		t.Fatal("expected error for cycle")
	}
}

func TestNewTypeRejectsDuplicateEdge(t *testing.T) {
	if _, err := NewType("x", []Node{{Task: 0}, {Task: 1}}, [][]int{{1, 1}, {}}); err == nil {
		t.Fatal("expected error for duplicate edge")
	}
}

func TestRootsAndSuccessors(t *testing.T) {
	// Diamond: 0 → (1, 2) → 3.
	wf := MustType("diamond",
		[]Node{{Task: 0}, {Task: 1}, {Task: 2}, {Task: 3}},
		[][]int{{1, 2}, {3}, {3}, {}})
	roots := wf.Roots()
	if len(roots) != 1 || roots[0] != 0 {
		t.Fatalf("roots=%v, want [0]", roots)
	}
	if got := wf.Successors(0); len(got) != 2 {
		t.Fatalf("successors(0)=%v", got)
	}
	if got := wf.Predecessors(3); len(got) != 2 {
		t.Fatalf("predecessors(3)=%v", got)
	}
	if wf.NumNodes() != 4 {
		t.Fatalf("NumNodes=%d", wf.NumNodes())
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	wf := MustType("diamond",
		[]Node{{Task: 0}, {Task: 1}, {Task: 2}, {Task: 3}},
		[][]int{{1, 2}, {3}, {3}, {}})
	pos := make(map[int]int)
	for i, n := range wf.TopoOrder() {
		pos[n] = i
	}
	for from, succs := range wf.Edges {
		for _, to := range succs {
			if pos[from] >= pos[to] {
				t.Fatalf("topo order violates edge %d→%d", from, to)
			}
		}
	}
}

func TestMultiRootGraph(t *testing.T) {
	// Two roots joining: (0, 1) → 2.
	wf := MustType("join",
		[]Node{{Task: 0}, {Task: 1}, {Task: 2}},
		[][]int{{2}, {2}, {}})
	if len(wf.Roots()) != 2 {
		t.Fatalf("roots=%v, want two roots", wf.Roots())
	}
}

func TestCriticalPathLength(t *testing.T) {
	// 0 → (1, 2) → 3 with unit costs: longest path is 3 nodes.
	wf := MustType("diamond",
		[]Node{{Task: 0}, {Task: 1}, {Task: 2}, {Task: 3}},
		[][]int{{1, 2}, {3}, {3}, {}})
	got := wf.CriticalPathLength(func(TaskType) float64 { return 1 })
	if got != 3 {
		t.Fatalf("critical path=%g, want 3", got)
	}
	// Weighted: task 2 is expensive, path through it dominates.
	got = wf.CriticalPathLength(func(tt TaskType) float64 {
		if tt == 2 {
			return 10
		}
		return 1
	})
	if got != 12 {
		t.Fatalf("weighted critical path=%g, want 12", got)
	}
}

func TestUsesTask(t *testing.T) {
	wf := MustType("p", []Node{{Task: 3}}, [][]int{{}})
	if !wf.UsesTask(3) || wf.UsesTask(0) {
		t.Fatal("UsesTask wrong")
	}
}

func TestMSDEnsembleStructure(t *testing.T) {
	e := NewMSD()
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if e.NumTasks() != 4 {
		t.Fatalf("MSD task count=%d, want 4 (paper §VI-A1)", e.NumTasks())
	}
	if e.NumWorkflows() != 3 {
		t.Fatalf("MSD workflow count=%d, want 3 (paper §VI-A1)", e.NumWorkflows())
	}
	for _, name := range []string{"Type1", "Type2", "Type3"} {
		if _, err := e.WorkflowByName(name); err != nil {
			t.Fatalf("missing workflow %s: %v", name, err)
		}
	}
	// Type1 and Type2 share Extract and Align — cascading-effect setup.
	t1, _ := e.WorkflowByName("Type1")
	t2, _ := e.WorkflowByName("Type2")
	if !t1.UsesTask(MSDExtract) || !t2.UsesTask(MSDExtract) {
		t.Fatal("Type1 and Type2 should share the Extract task")
	}
}

func TestLIGOEnsembleStructure(t *testing.T) {
	e := NewLIGO()
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if e.NumTasks() != 9 {
		t.Fatalf("LIGO task count=%d, want 9 (paper §VI-A1)", e.NumTasks())
	}
	if e.NumWorkflows() != 4 {
		t.Fatalf("LIGO workflow count=%d, want 4 (paper §VI-A1)", e.NumWorkflows())
	}
	for _, name := range []string{"DataFind", "CAT", "Full", "Injection"} {
		if _, err := e.WorkflowByName(name); err != nil {
			t.Fatalf("missing workflow %s: %v", name, err)
		}
	}
	// §VI-D: Coire terminates CAT, Full, and Injection.
	for _, name := range []string{"CAT", "Full", "Injection"} {
		wf, _ := e.WorkflowByName(name)
		if !wf.UsesTask(LIGOCoire) {
			t.Fatalf("workflow %s should use Coire", name)
		}
	}
	if e.Tasks[LIGOCoire].Name != "Coire" {
		t.Fatalf("task %d name=%q, want Coire", LIGOCoire, e.Tasks[LIGOCoire].Name)
	}
}

func TestToyEnsemble(t *testing.T) {
	e := Toy()
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if e.NumTasks() != 2 || e.NumWorkflows() != 1 {
		t.Fatal("toy ensemble shape wrong")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"msd", "ligo", "toy"} {
		e, ok := ByName(name)
		if !ok || e.Name != name {
			t.Fatalf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName should fail for unknown name")
	}
}

func TestEnsembleValidateCatchesUnusedTask(t *testing.T) {
	e := &Ensemble{
		Name:      "bad",
		Tasks:     []TaskDef{{Name: "a"}, {Name: "unused"}},
		Workflows: []*Type{MustType("w", []Node{{Task: 0}}, [][]int{{}})},
	}
	if err := e.Validate(); err == nil {
		t.Fatal("expected error for unused task type")
	}
}

func TestEnsembleValidateCatchesOutOfRangeTask(t *testing.T) {
	e := &Ensemble{
		Name:      "bad",
		Tasks:     []TaskDef{{Name: "a"}},
		Workflows: []*Type{MustType("w", []Node{{Task: 7}}, [][]int{{}})},
	}
	if err := e.Validate(); err == nil {
		t.Fatal("expected error for out-of-range task type")
	}
}

func TestTDSQueries(t *testing.T) {
	e := NewMSD()
	tds, err := NewTDS(e, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Type3 is the fork-join workflow: Extract → (Align, Segment) → Render.
	roots := tds.InitialNodes(2)
	if len(roots) != 1 || roots[0] != 0 {
		t.Fatalf("InitialNodes=%v", roots)
	}
	succ := tds.SuccessorNodes(2, 0)
	if len(succ) != 2 {
		t.Fatalf("SuccessorNodes=%v, want 2 successors", succ)
	}
	if got := tds.PredecessorCount(2, 3); got != 2 {
		t.Fatalf("PredecessorCount=%d, want 2", got)
	}
	if got := tds.TaskOf(2, 3); got != MSDRender {
		t.Fatalf("TaskOf=%d, want Render", got)
	}
	if tds.Queries() == 0 {
		t.Fatal("TDS did not count queries")
	}
}

func TestTDSRejectsBadInput(t *testing.T) {
	if _, err := NewTDS(NewMSD(), 0); err == nil {
		t.Fatal("expected error for 0 replicas")
	}
	bad := &Ensemble{Name: "bad"}
	if _, err := NewTDS(bad, 3); err == nil {
		t.Fatal("expected error for invalid ensemble")
	}
}

// Property: every validly constructed random DAG has a topological order
// containing all nodes exactly once, and every non-root node is reachable
// from the root set along edges.
func TestRandomDAGInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		nodes := make([]Node, n)
		edges := make([][]int, n)
		// Random DAG: only forward edges i → j with i < j.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					edges[i] = append(edges[i], j)
				}
			}
		}
		wf, err := NewType("rand", nodes, edges)
		if err != nil {
			return false
		}
		seen := map[int]bool{}
		for _, v := range wf.TopoOrder() {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		if len(seen) != n {
			return false
		}
		// Reachability from roots covers all nodes (true for forward-edge
		// construction since any node without preds is itself a root).
		reach := map[int]bool{}
		var stack []int
		stack = append(stack, wf.Roots()...)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if reach[v] {
				continue
			}
			reach[v] = true
			stack = append(stack, wf.Successors(v)...)
		}
		return len(reach) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
