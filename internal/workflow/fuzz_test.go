package workflow

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzWorkflowJSON hammers the ensemble JSON codec — the one external input
// surface of this package (custom ensemble files, the HTTP API). Decoding
// must never panic; a successful decode must yield an internally consistent
// ensemble that round-trips to stable bytes.
func FuzzWorkflowJSON(f *testing.F) {
	for _, ens := range []*Ensemble{Toy(), NewMSD(), NewLIGO()} {
		data, err := json.Marshal(ens)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","tasks":[{"name":"a","mean_service_sec":1}],"workflows":[{"name":"w","nodes":["a"],"edges":[[]]}]}`))
	f.Add([]byte(`{"name":"x","tasks":[{"name":"a","mean_service_sec":1}],"workflows":[{"name":"w","nodes":["a"],"edges":[[0]]}]}`))
	f.Add([]byte(`{"name":"x","tasks":[{"name":"a","mean_service_sec":-1}],"workflows":[]}`))
	f.Add([]byte(`{"name":"x","tasks":[{"name":"a","mean_service_sec":1}],"workflows":[{"name":"w","nodes":["b"],"edges":[[]]}]}`))
	f.Add([]byte(`{"name":"c","tasks":[{"name":"a","mean_service_sec":1},{"name":"b","mean_service_sec":2}],"workflows":[{"name":"w","nodes":["a","b"],"edges":[[1],[0]]}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var e Ensemble
		if err := json.Unmarshal(data, &e); err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		if err := e.Validate(); err != nil {
			t.Fatalf("decoded ensemble fails validation: %v\ninput: %q", err, data)
		}
		for _, wf := range e.Workflows {
			if err := wf.CheckConsistency(); err != nil {
				t.Fatalf("decoded workflow inconsistent: %v\ninput: %q", err, data)
			}
		}
		out, err := json.Marshal(&e)
		if err != nil {
			t.Fatalf("re-encode failed: %v\ninput: %q", err, data)
		}
		var e2 Ensemble
		if err := json.Unmarshal(out, &e2); err != nil {
			t.Fatalf("round-trip decode failed: %v\nencoded: %q", err, out)
		}
		out2, err := json.Marshal(&e2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("round-trip unstable:\nfirst:  %q\nsecond: %q", out, out2)
		}
	})
}
