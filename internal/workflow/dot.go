package workflow

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the workflow DAG in Graphviz DOT format, labelling each
// node with its task name and mean service time. Useful for inspecting
// reconstructed ensembles (`dot -Tpng`).
func (t *Type) WriteDOT(w io.Writer, e *Ensemble) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", t.Name)
	b.WriteString("  rankdir=LR;\n  node [shape=box];\n")
	for i, n := range t.Nodes {
		label := fmt.Sprintf("n%d", i)
		if e != nil && int(n.Task) < len(e.Tasks) {
			def := e.Tasks[n.Task]
			label = fmt.Sprintf("%s\\n%.1fs", def.Name, def.MeanServiceSec)
		} else if n.Name != "" {
			label = n.Name
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\"];\n", i, label)
	}
	for from, succs := range t.Edges {
		for _, to := range succs {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", from, to)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteDOT renders every workflow of the ensemble as one DOT file with a
// subgraph per workflow type.
func (e *Ensemble) WriteDOT(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", e.Name)
	b.WriteString("  rankdir=LR;\n  node [shape=box];\n")
	for wi, wf := range e.Workflows {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=%q;\n", wi, wf.Name)
		for i, n := range wf.Nodes {
			def := e.Tasks[n.Task]
			fmt.Fprintf(&b, "    w%dn%d [label=\"%s\\n%.1fs\"];\n", wi, i, def.Name, def.MeanServiceSec)
		}
		for from, succs := range wf.Edges {
			for _, to := range succs {
				fmt.Fprintf(&b, "    w%dn%d -> w%dn%d;\n", wi, from, wi, to)
			}
		}
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
