package workflow

import (
	"encoding/json"
	"path/filepath"
	"testing"
)

func TestEnsembleJSONRoundTrip(t *testing.T) {
	for _, name := range []string{"msd", "ligo", "toy"} {
		orig, _ := ByName(name)
		path := filepath.Join(t.TempDir(), name+".json")
		if err := orig.SaveJSON(path); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadEnsemble(path)
		if err != nil {
			t.Fatal(err)
		}
		if loaded.Name != orig.Name ||
			loaded.NumTasks() != orig.NumTasks() ||
			loaded.NumWorkflows() != orig.NumWorkflows() {
			t.Fatalf("%s: round trip changed shape", name)
		}
		for j, task := range orig.Tasks {
			if loaded.Tasks[j] != task {
				t.Fatalf("%s: task %d changed: %+v vs %+v", name, j, loaded.Tasks[j], task)
			}
		}
		for wi, wf := range orig.Workflows {
			lw := loaded.Workflows[wi]
			if lw.Name != wf.Name || lw.NumNodes() != wf.NumNodes() {
				t.Fatalf("%s: workflow %d changed", name, wi)
			}
			for ni, n := range wf.Nodes {
				if lw.Nodes[ni].Task != n.Task {
					t.Fatalf("%s/%s: node %d task changed", name, wf.Name, ni)
				}
			}
			for from := range wf.Edges {
				if len(lw.Edges[from]) != len(wf.Edges[from]) {
					t.Fatalf("%s/%s: edges changed at node %d", name, wf.Name, from)
				}
			}
		}
		// The loaded ensemble must be fully usable (roots/topo computed).
		if len(loaded.Workflows[0].Roots()) == 0 {
			t.Fatalf("%s: loaded workflow missing computed roots", name)
		}
	}
}

func TestLoadEnsembleRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"not json":     `{broken`,
		"no name":      `{"tasks":[{"name":"a","mean_service_sec":1}],"workflows":[{"name":"w","nodes":["a"],"edges":[[]]}]}`,
		"unnamed task": `{"name":"x","tasks":[{"mean_service_sec":1}],"workflows":[{"name":"w","nodes":[],"edges":[]}]}`,
		"dup task":     `{"name":"x","tasks":[{"name":"a","mean_service_sec":1},{"name":"a","mean_service_sec":1}],"workflows":[]}`,
		"bad service":  `{"name":"x","tasks":[{"name":"a","mean_service_sec":0}],"workflows":[]}`,
		"negative cv":  `{"name":"x","tasks":[{"name":"a","mean_service_sec":1,"service_cv":-1}],"workflows":[]}`,
		"unknown task": `{"name":"x","tasks":[{"name":"a","mean_service_sec":1}],"workflows":[{"name":"w","nodes":["b"],"edges":[[]]}]}`,
		"cyclic":       `{"name":"x","tasks":[{"name":"a","mean_service_sec":1}],"workflows":[{"name":"w","nodes":["a","a"],"edges":[[1],[0]]}]}`,
		"unused task":  `{"name":"x","tasks":[{"name":"a","mean_service_sec":1},{"name":"b","mean_service_sec":1}],"workflows":[{"name":"w","nodes":["a"],"edges":[[]]}]}`,
	}
	for name, blob := range cases {
		var e Ensemble
		if err := json.Unmarshal([]byte(blob), &e); err == nil {
			t.Fatalf("%s: expected decode error", name)
		}
	}
	if _, err := LoadEnsemble(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("expected error for missing file")
	}
}
