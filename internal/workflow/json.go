package workflow

import (
	"encoding/json"
	"fmt"
	"os"
)

// ensembleJSON is the on-disk schema for custom ensembles, so deployments
// can describe their own workflows without recompiling:
//
//	{
//	  "name": "genomics",
//	  "tasks": [{"name": "Align", "mean_service_sec": 5, "service_cv": 0.5}],
//	  "workflows": [{
//	    "name": "Full",
//	    "nodes": ["Align", "Sort"],
//	    "edges": [[1], []]
//	  }]
//	}
//
// Workflow nodes reference tasks by name.
type ensembleJSON struct {
	Name      string         `json:"name"`
	Tasks     []taskJSON     `json:"tasks"`
	Workflows []workflowJSON `json:"workflows"`
}

type taskJSON struct {
	Name           string  `json:"name"`
	MeanServiceSec float64 `json:"mean_service_sec"`
	ServiceCV      float64 `json:"service_cv"`
}

type workflowJSON struct {
	Name  string   `json:"name"`
	Nodes []string `json:"nodes"`
	Edges [][]int  `json:"edges"`
}

// MarshalJSON implements json.Marshaler.
func (e *Ensemble) MarshalJSON() ([]byte, error) {
	out := ensembleJSON{Name: e.Name}
	for _, t := range e.Tasks {
		out.Tasks = append(out.Tasks, taskJSON{
			Name:           t.Name,
			MeanServiceSec: t.MeanServiceSec,
			ServiceCV:      t.ServiceCV,
		})
	}
	for _, wf := range e.Workflows {
		wj := workflowJSON{Name: wf.Name, Edges: wf.Edges}
		for _, n := range wf.Nodes {
			wj.Nodes = append(wj.Nodes, e.Tasks[n.Task].Name)
		}
		out.Workflows = append(out.Workflows, wj)
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler, validating the DAGs and task
// references.
func (e *Ensemble) UnmarshalJSON(data []byte) error {
	var in ensembleJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("workflow: decode ensemble: %w", err)
	}
	if in.Name == "" {
		return fmt.Errorf("workflow: ensemble has no name")
	}
	tasks := make([]TaskDef, 0, len(in.Tasks))
	byName := make(map[string]TaskType, len(in.Tasks))
	for i, t := range in.Tasks {
		if t.Name == "" {
			return fmt.Errorf("workflow: task %d has no name", i)
		}
		if _, dup := byName[t.Name]; dup {
			return fmt.Errorf("workflow: duplicate task name %q", t.Name)
		}
		if t.MeanServiceSec <= 0 {
			return fmt.Errorf("workflow: task %q mean service time %g must be positive",
				t.Name, t.MeanServiceSec)
		}
		if t.ServiceCV < 0 {
			return fmt.Errorf("workflow: task %q negative service CV", t.Name)
		}
		byName[t.Name] = TaskType(i)
		tasks = append(tasks, TaskDef{
			Name:           t.Name,
			MeanServiceSec: t.MeanServiceSec,
			ServiceCV:      t.ServiceCV,
		})
	}
	workflows := make([]*Type, 0, len(in.Workflows))
	for _, wj := range in.Workflows {
		nodes := make([]Node, 0, len(wj.Nodes))
		for _, name := range wj.Nodes {
			tt, ok := byName[name]
			if !ok {
				return fmt.Errorf("workflow: workflow %q references unknown task %q", wj.Name, name)
			}
			nodes = append(nodes, Node{Task: tt})
		}
		wf, err := NewType(wj.Name, nodes, wj.Edges)
		if err != nil {
			return err
		}
		workflows = append(workflows, wf)
	}
	decoded := Ensemble{Name: in.Name, Tasks: tasks, Workflows: workflows}
	if err := decoded.Validate(); err != nil {
		return err
	}
	*e = decoded
	return nil
}

// SaveJSON writes the ensemble definition to path.
func (e *Ensemble) SaveJSON(path string) error {
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return fmt.Errorf("workflow: marshal ensemble: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("workflow: save ensemble: %w", err)
	}
	return nil
}

// LoadEnsemble reads and validates an ensemble definition from path.
func LoadEnsemble(path string) (*Ensemble, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workflow: load ensemble: %w", err)
	}
	var e Ensemble
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, err
	}
	return &e, nil
}
