package obs

import (
	"strings"
	"testing"
)

func TestRegisterProcessMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterProcessMetrics(r)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	for _, want := range []string{
		"process_goroutines ",
		"process_uptime_seconds ",
		"process_heap_alloc_bytes ",
		"process_gc_cycles_total ",
		"process_gc_pause_seconds_total ",
		"process_gomaxprocs ",
		`miras_build_info{go_version="go`,
		`revision="`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("process metrics missing %q:\n%s", want, body)
		}
	}
	if !strings.Contains(body, "} 1\n") {
		t.Fatalf("miras_build_info value not 1:\n%s", body)
	}
}
