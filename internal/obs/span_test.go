package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerFullChainSafe(t *testing.T) {
	var tr *Tracer
	tr.SetClock(func() float64 { return 1 })
	if tr.Ring() != nil {
		t.Fatalf("nil tracer Ring() = %v, want nil", tr.Ring())
	}
	restore := tr.SetParent(nil)
	restore()

	sp := tr.Start("x")
	if sp != nil {
		t.Fatalf("nil tracer Start = %v, want nil", sp)
	}
	sp = sp.Child("y").Str("k", "v").Int("i", 1).Uint("u", 2).F64("f", 3).Bool("b", true).T0(1)
	if sp != nil {
		t.Fatalf("nil span chain = %v, want nil", sp)
	}
	if got := sp.TraceID(); got != "" {
		t.Fatalf("nil span TraceID = %q, want empty", got)
	}
	if got := sp.Traceparent(); got != "" {
		t.Fatalf("nil span Traceparent = %q, want empty", got)
	}
	sp.End()
	sp.EndT(5)
	tr.StartDebug("d").End()
	tr.StartRemote("r", "").End()
}

func TestTracerDisabledZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("decide").Str("session", "s1").Int("window", 3).F64("reward", 1.5)
		c := sp.Child("fit").Uint("epoch", 2).Bool("ok", true).T0(1)
		c.EndT(2)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer path allocates %v allocs/op, want 0", allocs)
	}
}

func BenchmarkTracerDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("decide").Str("session", "s1").Int("window", i)
		sp.Child("fit").F64("loss", 0.5).End()
		sp.End()
	}
}

func TestSpanEmitsJSONL(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf, slog.LevelDebug)
	tr := NewTracer(TracerConfig{Recorder: rec, SimTime: true})

	root := tr.Start("request").Str("endpoint", "step")
	restore := tr.SetParent(root)
	child := tr.Start("env.window").T0(10)
	child.EndT(40)
	restore()
	root.End()

	lines := decodeLines(t, &buf)
	if len(lines) != 2 {
		t.Fatalf("got %d records, want 2", len(lines))
	}
	c, r := lines[0], lines[1]
	for _, m := range lines {
		if m["msg"] != "span" {
			t.Fatalf("msg = %v, want span", m["msg"])
		}
		if _, ok := m["wall_start"]; ok {
			t.Fatalf("sim-time span leaked wall_start: %v", m)
		}
		if _, ok := m["wall_dur"]; ok {
			t.Fatalf("sim-time span leaked wall_dur: %v", m)
		}
	}
	if c["name"] != "env.window" || r["name"] != "request" {
		t.Fatalf("names: child=%v root=%v", c["name"], r["name"])
	}
	if c["trace"] != r["trace"] {
		t.Fatalf("child trace %v != root trace %v", c["trace"], r["trace"])
	}
	if c["parent"] != r["id"] {
		t.Fatalf("child parent %v != root id %v", c["parent"], r["id"])
	}
	if _, ok := r["parent"]; ok {
		t.Fatalf("root span has parent: %v", r)
	}
	if c["t0"].(float64) != 10 || c["t1"].(float64) != 40 {
		t.Fatalf("child t0/t1 = %v/%v, want 10/40", c["t0"], c["t1"])
	}
	if r["endpoint"] != "step" {
		t.Fatalf("root attr endpoint = %v", r["endpoint"])
	}
}

func TestSpanWallModeEmitsWallFields(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf, slog.LevelDebug)
	tr := NewTracer(TracerConfig{Recorder: rec})
	tr.Start("req").End()
	lines := decodeLines(t, &buf)
	if len(lines) != 1 {
		t.Fatalf("got %d records, want 1", len(lines))
	}
	if _, ok := lines[0]["wall_start"]; !ok {
		t.Fatalf("wall-mode span missing wall_start: %v", lines[0])
	}
	if _, ok := lines[0]["wall_dur"]; !ok {
		t.Fatalf("wall-mode span missing wall_dur: %v", lines[0])
	}
}

// TestSpanTraceDeterministic pins the byte-identity guarantee: two tracers
// running the same seeded single-goroutine sequence in sim-time mode emit
// identical JSONL bytes.
func TestSpanTraceDeterministic(t *testing.T) {
	run := func() string {
		var buf bytes.Buffer
		rec := NewRecorder(&buf, slog.LevelDebug)
		clock := 0.0
		tr := NewTracer(TracerConfig{Recorder: rec, SimTime: true, Debug: true})
		tr.SetClock(func() float64 { return clock })
		for i := 0; i < 3; i++ {
			it := tr.Start("train.iteration").Int("iteration", i)
			restore := tr.SetParent(it)
			clock += 10
			tr.Start("collect").End()
			tr.StartDebug("ddpg.update").Uint("step", uint64(i)).End()
			restore()
			clock += 5
			it.End()
		}
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("sim-time traces differ:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	if !strings.Contains(a, `"name":"ddpg.update"`) {
		t.Fatalf("debug span missing from trace: %s", a)
	}
}

func TestStartDebugGatedByConfig(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf, slog.LevelDebug)
	tr := NewTracer(TracerConfig{Recorder: rec})
	if sp := tr.StartDebug("hot"); sp != nil {
		t.Fatalf("StartDebug without Debug config = %v, want nil", sp)
	}
	if buf.Len() != 0 {
		t.Fatalf("gated debug span emitted output: %s", buf.String())
	}
}

func TestStartRemoteJoinsTraceparent(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	const header = "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01"
	sp := tr.StartRemote("req", header)
	if got := sp.TraceID(); got != "0123456789abcdef0123456789abcdef" {
		t.Fatalf("TraceID = %q", got)
	}
	out := sp.Traceparent()
	if !strings.HasPrefix(out, "00-0123456789abcdef0123456789abcdef-") || !strings.HasSuffix(out, "-01") {
		t.Fatalf("Traceparent = %q does not continue the incoming trace", out)
	}
	if out == header {
		t.Fatalf("Traceparent did not mint a new span id: %q", out)
	}
	sp.End()

	// Malformed headers root a fresh trace instead of failing.
	for _, bad := range []string{
		"",
		"00-short-span-01",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // all-zero trace
		"00-0123456789abcdef0123456789abcdeZ-00f067aa0ba902b7-01", // bad hex
		"0123456789abcdef0123456789abcdef-00f067aa0ba902b7",
	} {
		sp := tr.StartRemote("req", bad)
		if sp == nil {
			t.Fatalf("StartRemote(%q) = nil", bad)
		}
		if sp.TraceID() == "0123456789abcdef0123456789abcdef" {
			t.Fatalf("malformed header %q joined a trace", bad)
		}
		sp.End()
	}
}

func TestSpanTraceparentRoundTrip(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	sp := tr.Start("a")
	hi, lo, parent, ok := parseTraceparent(sp.Traceparent())
	if !ok {
		t.Fatalf("own Traceparent %q does not parse", sp.Traceparent())
	}
	if hi != sp.traceHi || lo != sp.traceLo || parent != sp.id {
		t.Fatalf("round trip mismatch: got %x/%x/%x want %x/%x/%x",
			hi, lo, parent, sp.traceHi, sp.traceLo, sp.id)
	}
	sp.End()
}

func TestSpanRingCapacityAndOrder(t *testing.T) {
	ring := NewSpanRing(3)
	tr := NewTracer(TracerConfig{Ring: ring, SimTime: true})
	for i := 0; i < 5; i++ {
		tr.Start("s").Int("i", i).EndT(float64(i))
	}
	if ring.Len() != 3 {
		t.Fatalf("ring Len = %d, want 3", ring.Len())
	}
	recs := ring.Records()
	for i, want := range []float64{2, 3, 4} {
		if recs[i].T1 != want {
			t.Fatalf("recs[%d].T1 = %v, want %v (oldest-first eviction)", i, recs[i].T1, want)
		}
	}
}

func TestSpanRingRecordFields(t *testing.T) {
	ring := NewSpanRing(8)
	tr := NewTracer(TracerConfig{Ring: ring, SimTime: true})
	root := tr.Start("request").Str("session", "abc")
	child := root.Child("decide").T0(3)
	child.EndT(4)
	root.End()

	recs := ring.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	c, r := recs[0], recs[1]
	if c.Trace != r.Trace {
		t.Fatalf("trace mismatch: %q vs %q", c.Trace, r.Trace)
	}
	if c.Parent != r.ID {
		t.Fatalf("child Parent %q != root ID %q", c.Parent, r.ID)
	}
	if r.Parent != "" {
		t.Fatalf("root Parent = %q, want empty", r.Parent)
	}
	if c.T0 != 3 || c.T1 != 4 || !c.Sim {
		t.Fatalf("child times = %+v", c)
	}
	if r.WallStart != 0 || r.WallDur != 0 {
		t.Fatalf("sim-time record leaked wall fields: %+v", r)
	}
	if r.Attrs["session"] != "abc" {
		t.Fatalf("root Attrs = %v", r.Attrs)
	}
}

func TestSpanRingDropSession(t *testing.T) {
	ring := NewSpanRing(16)
	tr := NewTracer(TracerConfig{Ring: ring, SimTime: true})
	for i := 0; i < 4; i++ {
		tr.Start("step").Str("session", "keep").EndT(float64(i))
		tr.Start("step").Str("session", "gone").EndT(float64(i))
	}
	tr.Start("global").EndT(99)

	if got := ring.DropSession("gone"); got != 4 {
		t.Fatalf("DropSession removed %d, want 4", got)
	}
	recs := ring.Records()
	if len(recs) != 5 {
		t.Fatalf("ring kept %d records, want 5", len(recs))
	}
	for _, r := range recs {
		if s, ok := r.Attrs["session"].(string); ok && s == "gone" {
			t.Fatalf("dropped session record survived: %+v", r)
		}
	}
	// Order preserved, and the ring still accepts pushes.
	if recs[len(recs)-1].Name != "global" {
		t.Fatalf("order lost after DropSession: %+v", recs)
	}
	tr.Start("after").EndT(100)
	if ring.Len() != 6 {
		t.Fatalf("ring Len after push = %d, want 6", ring.Len())
	}
	if got := ring.DropSession("missing"); got != 0 {
		t.Fatalf("DropSession(missing) = %d, want 0", got)
	}

	var nilRing *SpanRing
	nilRing.Push(SpanRecord{})
	if nilRing.Len() != 0 || nilRing.Records() != nil || nilRing.DropSession("x") != 0 {
		t.Fatal("nil ring not inert")
	}
}

func TestSpanRingHandler(t *testing.T) {
	ring := NewSpanRing(4)
	tr := NewTracer(TracerConfig{Ring: ring, SimTime: true})
	tr.Start("a").EndT(1)

	rr := httptest.NewRecorder()
	ring.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/v1/debug/traces", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("Content-Type = %q", ct)
	}
	var recs []SpanRecord
	if err := json.Unmarshal(rr.Body.Bytes(), &recs); err != nil {
		t.Fatalf("response not JSON: %v\n%s", err, rr.Body.String())
	}
	if len(recs) != 1 || recs[0].Name != "a" {
		t.Fatalf("records = %+v", recs)
	}

	// Empty ring serves [] rather than null.
	rr = httptest.NewRecorder()
	NewSpanRing(4).Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/v1/debug/traces", nil))
	if got := strings.TrimSpace(rr.Body.String()); got != "[]" {
		t.Fatalf("empty ring body = %q, want []", got)
	}
}

func TestSpanOnAnomaly(t *testing.T) {
	var mu sync.Mutex
	var fired []string
	tr := NewTracer(TracerConfig{
		SimTime:  true, // anomaly detection works even when wall time is not exported
		SlowWall: time.Microsecond,
		OnAnomaly: func(span string, wall time.Duration) {
			mu.Lock()
			fired = append(fired, span)
			mu.Unlock()
		},
	})
	sp := tr.Start("slow")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	tr.Start("fastish").End()

	mu.Lock()
	defer mu.Unlock()
	if len(fired) == 0 || fired[0] != "slow" {
		t.Fatalf("anomaly hook fired for %v, want at least [slow]", fired)
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	ring := NewSpanRing(1024)
	tr := NewTracer(TracerConfig{Ring: ring})
	var wg sync.WaitGroup
	const goroutines, each = 8, 50
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				sp := tr.Start("req").Int("g", g)
				sp.Child("inner").End()
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	if got := ring.Len(); got != goroutines*each*2 {
		t.Fatalf("ring holds %d spans, want %d", got, goroutines*each*2)
	}
	// Span ids must be unique across goroutines.
	seen := make(map[string]bool)
	for _, r := range ring.Records() {
		if seen[r.ID] {
			t.Fatalf("duplicate span id %q", r.ID)
		}
		seen[r.ID] = true
	}
}

func TestContextSpanPropagation(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	sp := tr.Start("root")
	ctx := ContextWithSpan(context.Background(), sp)
	if got := SpanFromContext(ctx); got != sp {
		t.Fatalf("SpanFromContext = %v, want %v", got, sp)
	}
	if got := SpanFromContext(context.Background()); got != nil {
		t.Fatalf("empty context span = %v, want nil", got)
	}
	// Nil span leaves the context untouched.
	base := context.Background()
	if got := ContextWithSpan(base, nil); got != base {
		t.Fatal("ContextWithSpan(nil) wrapped the context")
	}
	sp.End()
}

func TestParseTraceparent(t *testing.T) {
	hi, lo, parent, ok := parseTraceparent("00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01")
	if !ok || hi != 0x0123456789abcdef || lo != 0x0123456789abcdef || parent != 0x00f067aa0ba902b7 {
		t.Fatalf("parse = %x/%x/%x/%v", hi, lo, parent, ok)
	}
	for _, bad := range []string{
		"",
		"00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-0", // short
		"00x0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"00-0123456789abcdef0123456789abcdeg-00f067aa0ba902b7-01",
		"00-0123456789abcdef0123456789abcdef-00f067aa0ba902bg-01",
	} {
		if _, _, _, ok := parseTraceparent(bad); ok {
			t.Fatalf("parseTraceparent(%q) accepted", bad)
		}
	}
}
