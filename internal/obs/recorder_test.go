package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func decodeLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		out = append(out, m)
	}
	return out
}

func TestRecorderJSONL(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf, slog.LevelInfo)
	r.Event("window").
		T(30).
		Int("window", 1).
		Ints("action", []int{4, 4, 3, 3}).
		F64s("wip", []float64{0, 1.5}).
		F64("reward", -3.5).
		Str("ensemble", "msd").
		Bool("burst", true).
		Uint("updates", 7).
		Emit()
	lines := decodeLines(t, &buf)
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1", len(lines))
	}
	m := lines[0]
	if m["msg"] != "window" || m["level"] != "INFO" {
		t.Fatalf("msg/level wrong: %v", m)
	}
	if _, hasTime := m["time"]; hasTime {
		t.Fatal("wall-clock time leaked into the trace; replays would not be deterministic")
	}
	if m["t"] != 30.0 || m["reward"] != -3.5 || m["window"] != 1.0 {
		t.Fatalf("scalar attrs wrong: %v", m)
	}
	if a, ok := m["action"].([]any); !ok || len(a) != 4 || a[0] != 4.0 {
		t.Fatalf("action attr wrong: %v", m["action"])
	}
	if w, ok := m["wip"].([]any); !ok || len(w) != 2 || w[1] != 1.5 {
		t.Fatalf("wip attr wrong: %v", m["wip"])
	}
}

func TestRecorderLevelFiltering(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf, slog.LevelInfo)
	if r.Debug("noisy") != nil {
		t.Fatal("Debug should return nil below the recorder level")
	}
	r.Debug("noisy").F64("x", 1).Emit() // whole chain must be a no-op
	r.Event("kept").Emit()
	lines := decodeLines(t, &buf)
	if len(lines) != 1 || lines[0]["msg"] != "kept" {
		t.Fatalf("level filtering wrong: %v", lines)
	}
	if !r.Enabled(slog.LevelInfo) || r.Enabled(slog.LevelDebug) {
		t.Fatal("Enabled disagrees with the configured level")
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled(slog.LevelError) {
		t.Fatal("nil recorder claims enabled")
	}
	r.Event("x").T(1).F64("a", 2).Ints("b", []int{1}).Emit() // must not panic
	r.Debug("y").Str("s", "v").Emit()
	if err := r.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
}

func TestRecorderConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf, slog.LevelDebug)
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Debug("tick").Int("worker", id).Int("i", i).Emit()
			}
		}(w)
	}
	wg.Wait()
	lines := decodeLines(t, &buf) // every line must parse: no interleaving
	if len(lines) != workers*per {
		t.Fatalf("got %d lines, want %d", len(lines), workers*per)
	}
}

func TestFileRecorder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	r, err := FileRecorder(path, "debug")
	if err != nil {
		t.Fatal(err)
	}
	r.Event("a").Int("n", 1).Emit()
	r.Debug("b").Emit()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(data), "\n"); got != 2 {
		t.Fatalf("file has %d lines, want 2:\n%s", got, data)
	}

	// Empty path: disabled recorder, no file, no error.
	nilRec, err := FileRecorder("", "info")
	if err != nil || nilRec != nil {
		t.Fatalf("empty path: rec=%v err=%v, want nil/nil", nilRec, err)
	}

	if _, err := FileRecorder(path, "loud"); err == nil {
		t.Fatal("bad level accepted")
	}
}

// BenchmarkRecorderDisabled proves the disabled fast path allocates
// nothing: instrumented hot loops (DDPG updates, model epochs) stay
// allocation-free when no -trace-out is given.
func BenchmarkRecorderDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Debug("ddpg_update").
			Uint("update", uint64(i)).
			F64("critic_loss", 0.5).
			F64("mean_q", -1).
			Int("replay", 1024).
			Emit()
	}
	if testing.AllocsPerRun(100, func() {
		r.Debug("x").F64("v", 1).Emit()
	}) != 0 {
		b.Fatal("disabled recorder path allocates")
	}
}

// BenchmarkRecorderLevelFiltered measures the below-level path of a live
// recorder — also allocation-free, since the builder is never taken from
// the pool.
func BenchmarkRecorderLevelFiltered(b *testing.B) {
	r := NewRecorder(&bytes.Buffer{}, slog.LevelInfo)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Debug("ddpg_update").F64("critic_loss", 0.5).Emit()
	}
}

// BenchmarkRecorderEmit measures the enabled path writing to memory.
func BenchmarkRecorderEmit(b *testing.B) {
	var buf bytes.Buffer
	r := NewRecorder(&buf, slog.LevelDebug)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		r.Debug("ddpg_update").Uint("update", uint64(i)).F64("critic_loss", 0.5).Emit()
	}
}
