package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestVisitSeriesCoversAllKinds(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "", "k", "a").Add(3)
	r.Gauge("g", "").Set(1.5)
	r.GaugeFunc("fg", "", func() float64 { return 7 })
	h := r.Histogram("h_seconds", "", []float64{1})
	h.Observe(0.5)
	h.Observe(2)

	got := make(map[string]float64)
	r.VisitSeries(func(name, labels string, value float64) {
		got[name+labels] = value
	})
	want := map[string]float64{
		`c_total{k="a"}`:  3,
		"g":               1.5,
		"fg":              7,
		"h_seconds_count": 2,
		"h_seconds_sum":   2.5,
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("VisitSeries[%q] = %v, want %v (all: %v)", k, got[k], v, got)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("VisitSeries yielded %d series, want %d: %v", len(got), len(want), got)
	}
	if r.SeriesCount() != 4 {
		t.Fatalf("SeriesCount = %d, want 4", r.SeriesCount())
	}
}

func TestTimeSeriesRingSampleAndWrap(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("wip", "")
	ring := NewTimeSeriesRing(3)
	for i := 0; i < 5; i++ {
		g.Set(float64(i))
		ring.Sample(r, float64(i))
	}
	dump := ring.Snapshot()
	if dump.Samples != 5 {
		t.Fatalf("Samples = %d, want 5", dump.Samples)
	}
	if len(dump.Series) != 1 {
		t.Fatalf("series = %+v, want one", dump.Series)
	}
	s := dump.Series[0]
	if s.Name != "wip" || s.Last != 4 {
		t.Fatalf("series = %+v", s)
	}
	if len(s.Points) != 3 {
		t.Fatalf("ring kept %d points, want 3", len(s.Points))
	}
	for i, want := range []float64{2, 3, 4} {
		if s.Points[i].T != want || s.Points[i].V != want {
			t.Fatalf("point %d = %+v, want t=v=%v (oldest-first)", i, s.Points[i], want)
		}
	}
}

// TestTimeSeriesRingPrunesRemovedSeries is the cleanup-audit half of the
// ring: when a session's gauges leave the registry, the next Sample drops
// their history, returning ring cardinality to baseline.
func TestTimeSeriesRingPrunesRemovedSeries(t *testing.T) {
	r := NewRegistry()
	r.Gauge("up", "").Set(1)
	ring := NewTimeSeriesRing(8)
	ring.Sample(r, 0)
	baseline := ring.SeriesCount()

	r.Gauge("miras_env_wip", "", "session", "s1").Set(5)
	r.Counter("miras_faults_total", "", "session", "s1").Inc()
	ring.Sample(r, 1)
	if ring.SeriesCount() != baseline+2 {
		t.Fatalf("ring series = %d, want %d", ring.SeriesCount(), baseline+2)
	}

	r.Remove("miras_env_wip", "session", "s1")
	r.Remove("miras_faults_total", "session", "s1")
	ring.Sample(r, 2)
	if ring.SeriesCount() != baseline {
		t.Fatalf("ring series after delete = %d, want baseline %d", ring.SeriesCount(), baseline)
	}
	for _, s := range ring.Snapshot().Series {
		if strings.Contains(s.Labels, `session="s1"`) {
			t.Fatalf("deleted session series survived: %+v", s)
		}
	}
}

func TestTimeSeriesHandlerJSON(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", "").Set(2)
	ring := NewTimeSeriesRing(4)
	ring.Sample(r, 0)

	rr := httptest.NewRecorder()
	ring.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/v1/debug/timeseries", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("Content-Type = %q", ct)
	}
	var dump TimeSeriesDump
	if err := json.Unmarshal(rr.Body.Bytes(), &dump); err != nil {
		t.Fatalf("response not JSON: %v\n%s", err, rr.Body.String())
	}
	if dump.Samples != 1 || len(dump.Series) != 1 || dump.Series[0].Last != 2 {
		t.Fatalf("dump = %+v", dump)
	}
}

func TestDashHandlerHTML(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", "", "k", `a<b>"c"`).Set(1)
	ring := NewTimeSeriesRing(4)
	ring.Sample(r, 0)
	ring.Sample(r, 1)

	rr := httptest.NewRecorder()
	ring.DashHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/dash", nil))
	body := rr.Body.String()
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("Content-Type = %q", ct)
	}
	for _, want := range []string{"<!DOCTYPE html>", "<svg", "<polyline", "miras live time series"} {
		if !strings.Contains(body, want) {
			t.Fatalf("dashboard missing %q:\n%s", want, body)
		}
	}
	// Label values render escaped, not as live markup.
	if strings.Contains(body, "<b>") {
		t.Fatalf("dashboard injected unescaped label markup:\n%s", body)
	}
}
