package obs

import (
	"bytes"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func captureFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".pprof") {
			names = append(names, e.Name())
		}
	}
	return names
}

func TestProfileCapturerNilSafe(t *testing.T) {
	var p *ProfileCapturer
	if p.Trigger("x") {
		t.Fatal("nil capturer Trigger returned true")
	}
	if p.Captures() != 0 || p.Dropped() != 0 {
		t.Fatal("nil capturer counts non-zero")
	}
	p.Wait()
}

func TestProfileCapturerWritesHeap(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	rec := NewRecorder(&buf, slog.LevelInfo)
	p, err := NewProfileCapturer(ProfileConfig{Dir: dir, MinInterval: time.Hour, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Trigger("divergence_rollback") {
		t.Fatal("first Trigger was rate-limited")
	}
	p.Wait()

	files := captureFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("capture files = %v, want one heap profile", files)
	}
	if !strings.Contains(files[0], "divergence_rollback") || !strings.HasSuffix(files[0], ".heap.pprof") {
		t.Fatalf("capture file name %q", files[0])
	}
	info, err := os.Stat(filepath.Join(dir, files[0]))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("heap profile is empty")
	}
	if !strings.Contains(buf.String(), `"msg":"profile_capture"`) {
		t.Fatalf("no profile_capture event recorded: %s", buf.String())
	}
}

func TestProfileCapturerRateLimit(t *testing.T) {
	dir := t.TempDir()
	p, err := NewProfileCapturer(ProfileConfig{Dir: dir, MinInterval: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Unix(1700000000, 0)
	p.setNow(func() time.Time { return clock })

	if !p.Trigger("hpa_fallback") {
		t.Fatal("first trigger limited")
	}
	clock = clock.Add(30 * time.Second)
	if p.Trigger("hpa_fallback") {
		t.Fatal("trigger inside MinInterval not limited")
	}
	clock = clock.Add(31 * time.Second)
	if !p.Trigger("hpa_fallback") {
		t.Fatal("trigger after MinInterval limited")
	}
	p.Wait()
	if p.Captures() != 2 || p.Dropped() != 1 {
		t.Fatalf("captures=%d dropped=%d, want 2/1", p.Captures(), p.Dropped())
	}
	if got := len(captureFiles(t, dir)); got != 2 {
		t.Fatalf("files on disk = %d, want 2", got)
	}
}

func TestProfileCapturerDirSizeCap(t *testing.T) {
	dir := t.TempDir()
	p, err := NewProfileCapturer(ProfileConfig{Dir: dir, MinInterval: time.Nanosecond, MaxDirBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Unix(1700000000, 0)
	p.setNow(func() time.Time { c := clock; clock = clock.Add(time.Second); return c })

	for i := 0; i < 4; i++ {
		if !p.Trigger("slow_span") {
			t.Fatalf("trigger %d limited", i)
		}
	}
	p.Wait()
	// A 1-byte budget can never fit a heap profile, so after every capture
	// all but the newest file must have been evicted (the newest is written
	// after eviction of the older ones; the final enforce pass leaves at
	// most the newest over-budget file).
	files := captureFiles(t, dir)
	if len(files) > 1 {
		t.Fatalf("size cap kept %d files: %v", len(files), files)
	}
	if p.Captures() != 4 {
		t.Fatalf("captures = %d, want 4", p.Captures())
	}
}

func TestProfileCapturerCPUCapture(t *testing.T) {
	dir := t.TempDir()
	p, err := NewProfileCapturer(ProfileConfig{Dir: dir, MinInterval: time.Hour, CPUDuration: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Trigger("anomaly") {
		t.Fatal("trigger limited")
	}
	p.Wait()
	var heap, cpu bool
	for _, f := range captureFiles(t, dir) {
		heap = heap || strings.HasSuffix(f, ".heap.pprof")
		cpu = cpu || strings.HasSuffix(f, ".cpu.pprof")
	}
	if !heap || !cpu {
		t.Fatalf("files = %v, want heap and cpu captures", captureFiles(t, dir))
	}
}

func TestProfileCapturerBadDir(t *testing.T) {
	if _, err := NewProfileCapturer(ProfileConfig{Dir: ""}); err == nil {
		t.Fatal("empty dir accepted")
	}
	file := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewProfileCapturer(ProfileConfig{Dir: filepath.Join(file, "sub")}); err == nil {
		t.Fatal("dir under a regular file accepted")
	}
}

func TestSanitizeReason(t *testing.T) {
	for in, want := range map[string]string{
		"divergence_rollback": "divergence_rollback",
		"":                    "anomaly",
		"a b/c..d":            "a_b_c__d",
	} {
		if got := sanitizeReason(in); got != want {
			t.Fatalf("sanitizeReason(%q) = %q, want %q", in, got, want)
		}
	}
	long := strings.Repeat("x", 100)
	if got := sanitizeReason(long); len(got) != 48 {
		t.Fatalf("long reason not truncated: %d chars", len(got))
	}
}
