// Anomaly-triggered profiling: when something goes wrong — a divergence
// rollback, an HPA fallback, a span blowing past its latency threshold —
// the ProfileCapturer writes pprof heap (and optionally CPU) profiles into
// a size-capped directory, so the evidence exists before anyone tries to
// reproduce the incident. Captures are rate-limited and bounded; a nil
// capturer is a no-op, mirroring the nil Recorder/Tracer discipline.

package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// ProfileConfig configures a ProfileCapturer.
type ProfileConfig struct {
	// Dir is the directory captures are written into (created if missing).
	Dir string
	// MinInterval is the minimum gap between captures; triggers arriving
	// sooner are dropped (counted in Dropped). Default 30s.
	MinInterval time.Duration
	// MaxDirBytes caps the total size of capture files in Dir; the oldest
	// captures are deleted to make room. Default 32 MiB.
	MaxDirBytes int64
	// CPUDuration is how long to run the CPU profiler per capture.
	// Zero disables CPU capture (heap only) — tests use this to stay fast
	// and to avoid fighting over the process-wide CPU profiler.
	CPUDuration time.Duration
	// Recorder, if set, gets a "profile_capture" event per capture.
	Recorder *Recorder
}

// ProfileCapturer writes rate-limited pprof captures on anomaly triggers.
// All methods are safe on a nil receiver and safe for concurrent use.
type ProfileCapturer struct {
	cfg ProfileConfig
	now func() time.Time // injectable for rate-limit tests

	mu       sync.Mutex
	last     time.Time
	seq      uint64
	captures uint64
	dropped  uint64
	cpuWG    sync.WaitGroup
}

// NewProfileCapturer returns a capturer writing into cfg.Dir, creating the
// directory eagerly so a misconfigured path fails at startup, not at the
// first incident.
func NewProfileCapturer(cfg ProfileConfig) (*ProfileCapturer, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("obs: profile dir is empty")
	}
	if cfg.MinInterval <= 0 {
		cfg.MinInterval = 30 * time.Second
	}
	if cfg.MaxDirBytes <= 0 {
		cfg.MaxDirBytes = 32 << 20
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: profile dir: %w", err)
	}
	return &ProfileCapturer{cfg: cfg, now: time.Now}, nil
}

// setNow swaps the clock used for rate limiting and file naming (tests).
func (p *ProfileCapturer) setNow(fn func() time.Time) { p.now = fn }

// Captures returns how many captures have been written.
func (p *ProfileCapturer) Captures() uint64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.captures
}

// Dropped returns how many triggers were dropped by the rate limit.
func (p *ProfileCapturer) Dropped() uint64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dropped
}

// Trigger captures profiles for the named anomaly (e.g.
// "divergence_rollback", "hpa_fallback", "slow_span"). The heap profile is
// written synchronously; the CPU profile (if configured) runs in a
// background goroutine for cfg.CPUDuration. Returns true if a capture
// started, false if it was rate-limited or the receiver is nil.
func (p *ProfileCapturer) Trigger(reason string) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	now := p.now()
	if !p.last.IsZero() && now.Sub(p.last) < p.cfg.MinInterval {
		p.dropped++
		p.mu.Unlock()
		return false
	}
	p.last = now
	p.seq++
	seq := p.seq
	p.captures++
	p.mu.Unlock()

	base := fmt.Sprintf("%s-%04d-%s", now.UTC().Format("20060102T150405"), seq, sanitizeReason(reason))
	heapPath := filepath.Join(p.cfg.Dir, base+".heap.pprof")
	heapErr := p.writeHeap(heapPath)

	cpu := p.cfg.CPUDuration > 0
	if cpu {
		cpuPath := filepath.Join(p.cfg.Dir, base+".cpu.pprof")
		p.cpuWG.Add(1)
		go func() {
			defer p.cpuWG.Done()
			p.writeCPU(cpuPath)
			p.enforceCap()
		}()
	}
	p.enforceCap()

	ev := p.cfg.Recorder.Event("profile_capture").Str("reason", reason).Str("file", base).Bool("cpu", cpu)
	if heapErr != nil {
		ev = ev.Str("heap_error", heapErr.Error())
	}
	ev.Emit()
	return true
}

// Wait blocks until in-flight CPU captures finish (tests, shutdown).
func (p *ProfileCapturer) Wait() {
	if p == nil {
		return
	}
	p.cpuWG.Wait()
}

func (p *ProfileCapturer) writeHeap(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC() // fresh heap statistics
	err = pprof.WriteHeapProfile(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func (p *ProfileCapturer) writeCPU(path string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	defer f.Close()
	// StartCPUProfile fails if another CPU profile is running (e.g. a
	// concurrent capture or the pprof HTTP endpoint); drop the file.
	if err := pprof.StartCPUProfile(f); err != nil {
		_ = os.Remove(path)
		return
	}
	time.Sleep(p.cfg.CPUDuration)
	pprof.StopCPUProfile()
}

// enforceCap deletes the oldest capture files until the directory fits the
// byte budget.
func (p *ProfileCapturer) enforceCap() {
	p.mu.Lock()
	defer p.mu.Unlock()
	entries, err := os.ReadDir(p.cfg.Dir)
	if err != nil {
		return
	}
	type capFile struct {
		name string
		size int64
	}
	var files []capFile
	var total int64
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".pprof") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, capFile{e.Name(), info.Size()})
		total += info.Size()
	}
	// Capture names start with a UTC timestamp + sequence number, so
	// lexical order is age order.
	sort.Slice(files, func(i, j int) bool { return files[i].name < files[j].name })
	for _, f := range files {
		if total <= p.cfg.MaxDirBytes {
			break
		}
		if err := os.Remove(filepath.Join(p.cfg.Dir, f.name)); err == nil {
			total -= f.size
		}
	}
}

// sanitizeReason keeps capture file names shell- and filesystem-safe.
func sanitizeReason(reason string) string {
	if reason == "" {
		return "anomaly"
	}
	var b strings.Builder
	for _, c := range reason {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	const maxLen = 48
	s := b.String()
	if len(s) > maxLen {
		s = s[:maxLen]
	}
	return s
}
