// Causal span tracing. A Tracer produces spans — named intervals with a
// trace id, a span id, and a parent link — threaded through the training
// loop (iteration → collect/fit/improve/evaluate windows) and the serving
// path (HTTP request → decide/step), so latency and failures can be
// attributed across component boundaries instead of inferred from flat
// counters.
//
// The same discipline as the Recorder applies: a nil *Tracer (and the nil
// *Span every method then returns) is fully disabled and allocates nothing,
// so hot paths stay instrumented unconditionally. In sim-time mode spans
// carry virtual timestamps only — wall-clock fields are stripped — so a
// seeded run emits a byte-identical span trace every time, at any
// GOMAXPROCS.
//
// Finished spans are exported two ways: as "span" records on the Recorder's
// JSONL sink (the CLI -trace-out files), and into an in-process SpanRing
// served at GET /v1/debug/traces.

package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TracerConfig configures a Tracer. The zero value is a valid (if silent)
// tracer: no sink, no ring, wall-clock timestamps.
type TracerConfig struct {
	// Recorder, when non-nil, receives one "span" JSONL record per
	// finished span.
	Recorder *Recorder
	// Ring, when non-nil, keeps the most recent finished spans in memory
	// for GET /v1/debug/traces.
	Ring *SpanRing
	// SimTime strips wall-clock fields from exported spans so seeded
	// traces are byte-identical across runs. Virtual timestamps come from
	// Clock or the explicit T0/EndT calls.
	SimTime bool
	// Clock, when non-nil, supplies virtual (simulation) time for spans
	// that do not set it explicitly. See also (*Tracer).SetClock.
	Clock func() float64
	// Debug enables the debug-granularity spans (per DDPG minibatch
	// update); by default StartDebug is a no-op.
	Debug bool
	// SlowWall, when positive, marks spans whose wall duration exceeds it
	// as anomalies: OnAnomaly fires (even in sim-time mode, where the wall
	// measurement is internal only).
	SlowWall time.Duration
	// OnAnomaly is called for every over-threshold span. Implementations
	// must be cheap and concurrency-safe; the profiling capturer's
	// rate-limited Trigger is the intended target.
	OnAnomaly func(span string, wall time.Duration)
}

// Tracer mints spans. Safe for concurrent use, except SetParent/SetClock
// which belong to single-goroutine setup and training loops. A nil *Tracer
// is valid and fully disabled.
type Tracer struct {
	cfg TracerConfig
	// ids is the trace/span id allocator. Sequential ids keep seeded
	// single-threaded traces deterministic; concurrent servers only need
	// uniqueness, which the atomic provides.
	ids  atomic.Uint64
	pool sync.Pool
	// cur is the ambient parent installed by SetParent — the mechanism the
	// single-goroutine training loop uses to parent spans created deep in
	// components (env windows, model fits) without threading a Span
	// through every signature. Servers never set it.
	cur parentRef
}

type parentRef struct {
	traceHi, traceLo uint64
	id               uint64
	ok               bool
}

// NewTracer builds a tracer from cfg.
func NewTracer(cfg TracerConfig) *Tracer {
	t := &Tracer{cfg: cfg}
	t.pool.New = func() any { return &Span{attrs: make([]slog.Attr, 0, 16)} }
	return t
}

// SetClock installs the virtual-time source (typically the simulation
// engine's Now). Intended for single-goroutine setup; the experiment
// harness calls it once per built harness. Safe on a nil tracer.
func (t *Tracer) SetClock(fn func() float64) {
	if t != nil {
		t.cfg.Clock = fn
	}
}

// Ring returns the tracer's span ring, or nil. Safe on a nil tracer.
func (t *Tracer) Ring() *SpanRing {
	if t == nil {
		return nil
	}
	return t.cfg.Ring
}

// SetParent installs sp as the ambient parent: every Start until the
// returned restore function runs creates a child of sp. Single-goroutine
// use only (the training loop); concurrent servers parent explicitly via
// Child. Safe on a nil tracer and a nil span.
func (t *Tracer) SetParent(sp *Span) (restore func()) {
	if t == nil {
		return func() {}
	}
	prev := t.cur
	if sp == nil {
		t.cur = parentRef{}
	} else {
		t.cur = parentRef{sp.traceHi, sp.traceLo, sp.id, true}
	}
	return func() { t.cur = prev }
}

// Start begins an info-level span. Under an ambient parent (SetParent) the
// span joins that trace; otherwise it roots a fresh one. Returns nil (all
// methods no-op) on a nil tracer.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return t.start(name, slog.LevelInfo)
}

// StartDebug begins a debug-granularity span (per-minibatch hot-path
// instrumentation). It is a no-op unless the tracer was built with Debug.
func (t *Tracer) StartDebug(name string) *Span {
	if t == nil || !t.cfg.Debug {
		return nil
	}
	return t.start(name, slog.LevelDebug)
}

// StartRemote begins a root span continuing an incoming W3C traceparent
// header ("00-<32hex trace>-<16hex parent>-<2hex flags>"). An empty or
// malformed value starts a fresh trace instead.
func (t *Tracer) StartRemote(name, traceparent string) *Span {
	if t == nil {
		return nil
	}
	sp := t.start(name, slog.LevelInfo)
	if hi, lo, parent, ok := parseTraceparent(traceparent); ok {
		sp.traceHi, sp.traceLo, sp.parent = hi, lo, parent
	}
	return sp
}

func (t *Tracer) start(name string, level slog.Level) *Span {
	sp := t.pool.Get().(*Span)
	sp.tr, sp.level, sp.name = t, level, name
	if t.cur.ok {
		sp.traceHi, sp.traceLo = t.cur.traceHi, t.cur.traceLo
		sp.parent = t.cur.id
	} else {
		sp.traceHi, sp.traceLo = 0, t.ids.Add(1)
		sp.parent = 0
	}
	sp.id = t.ids.Add(1)
	// Wall time is always measured (the slow-span anomaly check needs it)
	// but only exported when the tracer is not in sim-time mode.
	sp.wallStart = time.Now()
	if t.cfg.Clock != nil {
		sp.t0, sp.hasT0 = t.cfg.Clock(), true
	} else {
		sp.t0, sp.hasT0 = 0, false
	}
	return sp
}

// Span is one in-flight traced interval. A nil *Span (disabled tracer)
// accepts the whole builder chain and End as no-ops. Spans are pooled:
// every started span must End exactly once, and must not be used after.
type Span struct {
	tr        *Tracer
	level     slog.Level
	traceHi   uint64
	traceLo   uint64
	id        uint64
	parent    uint64
	name      string
	wallStart time.Time
	t0        float64
	hasT0     bool
	attrs     []slog.Attr
}

// Child begins a span in the same trace with s as parent, at s's level.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := s.tr.pool.Get().(*Span)
	c.tr, c.level, c.name = s.tr, s.level, name
	c.traceHi, c.traceLo, c.parent = s.traceHi, s.traceLo, s.id
	c.id = s.tr.ids.Add(1)
	c.wallStart = time.Now()
	if s.tr.cfg.Clock != nil {
		c.t0, c.hasT0 = s.tr.cfg.Clock(), true
	} else {
		c.t0, c.hasT0 = 0, false
	}
	return c
}

// T0 sets the span's virtual start time explicitly, overriding the clock.
func (s *Span) T0(simTime float64) *Span {
	if s == nil {
		return nil
	}
	s.t0, s.hasT0 = simTime, true
	return s
}

// Str attaches a string attribute.
func (s *Span) Str(k, v string) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, slog.String(k, v))
	return s
}

// Int attaches an int attribute.
func (s *Span) Int(k string, v int) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, slog.Int(k, v))
	return s
}

// Uint attaches a uint64 attribute.
func (s *Span) Uint(k string, v uint64) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, slog.Uint64(k, v))
	return s
}

// F64 attaches a float attribute.
func (s *Span) F64(k string, v float64) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, slog.Float64(k, v))
	return s
}

// Bool attaches a bool attribute.
func (s *Span) Bool(k string, v bool) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, slog.Bool(k, v))
	return s
}

// TraceID returns the span's 32-hex-digit W3C trace id ("" when disabled).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return fmt.Sprintf("%016x%016x", s.traceHi, s.traceLo)
}

// Traceparent renders the W3C header value that downstream calls should
// carry to join this span's trace ("" when disabled).
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return fmt.Sprintf("00-%016x%016x-%016x-01", s.traceHi, s.traceLo, s.id)
}

// End finishes the span at the clock's current virtual time (if a clock is
// installed), exports it, and recycles the builder.
func (s *Span) End() {
	if s == nil {
		return
	}
	if s.tr.cfg.Clock != nil {
		s.finish(s.tr.cfg.Clock(), true)
		return
	}
	s.finish(0, false)
}

// EndT finishes the span at the explicit virtual time t1.
func (s *Span) EndT(t1 float64) {
	if s == nil {
		return
	}
	s.finish(t1, true)
}

func (s *Span) finish(t1 float64, hasT1 bool) {
	tr := s.tr
	wall := time.Since(s.wallStart)
	if tr.cfg.SlowWall > 0 && wall > tr.cfg.SlowWall && tr.cfg.OnAnomaly != nil {
		tr.cfg.OnAnomaly(s.name, wall)
	}

	if rec := tr.cfg.Recorder; rec != nil {
		if ev := rec.at(s.level, "span"); ev != nil {
			ev.Str("name", s.name).
				Str("trace", s.TraceID()).
				Uint("id", s.id)
			if s.parent != 0 {
				ev.Uint("parent", s.parent)
			}
			if s.hasT0 {
				ev.F64("t0", s.t0)
			}
			if hasT1 {
				ev.F64("t1", t1)
			}
			if !tr.cfg.SimTime {
				ev.F64("wall_start", float64(s.wallStart.UnixNano())/1e9).
					F64("wall_dur", wall.Seconds())
			}
			ev.attrs = append(ev.attrs, s.attrs...)
			ev.Emit()
		}
	}
	if ring := tr.cfg.Ring; ring != nil {
		rec := SpanRecord{
			Trace:  s.TraceID(),
			ID:     fmt.Sprintf("%016x", s.id),
			Name:   s.name,
			T0:     s.t0,
			T1:     t1,
			Sim:    s.hasT0 || hasT1,
			Debug:  s.level < slog.LevelInfo,
			Parent: "",
		}
		if s.parent != 0 {
			rec.Parent = fmt.Sprintf("%016x", s.parent)
		}
		if !tr.cfg.SimTime {
			rec.WallStart = float64(s.wallStart.UnixNano()) / 1e9
			rec.WallDur = wall.Seconds()
		}
		if len(s.attrs) > 0 {
			rec.Attrs = make(map[string]any, len(s.attrs))
			for _, a := range s.attrs {
				rec.Attrs[a.Key] = a.Value.Resolve().Any()
			}
		}
		ring.Push(rec)
	}

	s.tr = nil
	s.attrs = s.attrs[:0]
	tr.pool.Put(s)
}

// parseTraceparent validates a W3C traceparent value and extracts the trace
// id halves and the parent span id.
func parseTraceparent(v string) (hi, lo, parent uint64, ok bool) {
	// 00-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx-yyyyyyyyyyyyyyyy-zz
	if len(v) != 55 || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return 0, 0, 0, false
	}
	var err error
	if hi, err = strconv.ParseUint(v[3:19], 16, 64); err != nil {
		return 0, 0, 0, false
	}
	if lo, err = strconv.ParseUint(v[19:35], 16, 64); err != nil {
		return 0, 0, 0, false
	}
	if parent, err = strconv.ParseUint(v[36:52], 16, 64); err != nil {
		return 0, 0, 0, false
	}
	if hi == 0 && lo == 0 {
		return 0, 0, 0, false // all-zero trace id is invalid per spec
	}
	return hi, lo, parent, true
}

// --- context propagation ---

type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying sp (unchanged when sp is nil).
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// --- span ring ---

// SpanRecord is one finished span as exported at /v1/debug/traces.
type SpanRecord struct {
	Trace  string `json:"trace"`
	ID     string `json:"id"`
	Parent string `json:"parent,omitempty"`
	Name   string `json:"name"`
	// T0 and T1 are virtual (simulation) timestamps in seconds; Sim
	// reports whether they were actually set.
	T0  float64 `json:"t0"`
	T1  float64 `json:"t1"`
	Sim bool    `json:"sim"`
	// WallStart (unix seconds) and WallDur (seconds) are zero in sim-time
	// mode.
	WallStart float64 `json:"wall_start,omitempty"`
	WallDur   float64 `json:"wall_dur,omitempty"`
	// Debug marks debug-granularity spans.
	Debug bool           `json:"debug,omitempty"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// SpanRing keeps the most recent finished spans in a fixed-capacity ring.
// Safe for concurrent use; a nil *SpanRing swallows everything.
type SpanRing struct {
	mu   sync.Mutex
	buf  []SpanRecord
	head int // next write position
	n    int // live records
}

// NewSpanRing returns a ring holding the last capacity spans (minimum 1).
func NewSpanRing(capacity int) *SpanRing {
	if capacity < 1 {
		capacity = 1
	}
	return &SpanRing{buf: make([]SpanRecord, capacity)}
}

// Push appends one finished span, evicting the oldest at capacity. Safe on
// a nil ring.
func (r *SpanRing) Push(rec SpanRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.head] = rec
	r.head = (r.head + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Len returns the number of retained spans. Safe on a nil ring.
func (r *SpanRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Records returns the retained spans, oldest first. Safe on a nil ring.
func (r *SpanRing) Records() []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanRecord, 0, r.n)
	start := r.head - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// DropSession removes every retained span whose "session" attribute equals
// id — the DELETE /v1/sessions/{id} cleanup hook — and returns how many it
// removed. Safe on a nil ring.
func (r *SpanRing) DropSession(id string) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	kept := make([]SpanRecord, 0, r.n)
	start := r.head - r.n
	if start < 0 {
		start += len(r.buf)
	}
	dropped := 0
	for i := 0; i < r.n; i++ {
		rec := r.buf[(start+i)%len(r.buf)]
		if s, ok := rec.Attrs["session"].(string); ok && s == id {
			dropped++
			continue
		}
		kept = append(kept, rec)
	}
	if dropped == 0 {
		return 0
	}
	clear(r.buf)
	copy(r.buf, kept)
	r.head = len(kept) % len(r.buf)
	r.n = len(kept)
	return dropped
}

// Handler serves the ring as a JSON array (oldest first) — the
// GET /v1/debug/traces endpoint.
func (r *SpanRing) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		recs := r.Records()
		if recs == nil {
			recs = []SpanRecord{}
		}
		_ = json.NewEncoder(w).Encode(recs)
	})
}
