package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "requests")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Get-or-create: same series returns the same metric.
	if again := r.Counter("requests_total", "requests"); again != c {
		t.Fatal("re-registration returned a different counter")
	}
	// Distinct labels are distinct series.
	other := r.Counter("requests_total", "requests", "endpoint", "step")
	if other == c {
		t.Fatal("labelled series aliases the unlabelled one")
	}
}

func TestGaugeSetAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("wip", "work in progress")
	g.Set(3.5)
	g.Add(-1.25)
	if got := g.Value(); got != 2.25 {
		t.Fatalf("gauge = %g, want 2.25", got)
	}
}

func TestConcurrentCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", "")
	g := r.Gauge("level", "")
	h := r.Histogram("lat", "", []float64{0.5, 1, 2})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.75)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Fatalf("gauge = %g, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}

// TestHistogramBucketBoundaries pins the inclusive-upper-bound (`le`)
// semantics: a value equal to a bound lands in that bound's bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d", "", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 4.9, 5, 6, math.Inf(1)} {
		h.Observe(v)
	}
	// Non-cumulative expectations per bucket: ≤1: {0.5, 1}; ≤2: {1.0000001, 2};
	// ≤5: {4.9, 5}; +Inf overflow: {6, Inf}.
	want := []uint64{2, 2, 2, 2}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 8 {
		t.Errorf("count = %d, want 8", h.Count())
	}
	var out strings.Builder
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`d_bucket{le="1"} 2`,
		`d_bucket{le="2"} 4`,
		`d_bucket{le="5"} 6`,
		`d_bucket{le="+Inf"} 8`,
		`d_count 8`,
	} {
		if !strings.Contains(out.String(), line) {
			t.Errorf("exposition missing %q in:\n%s", line, out.String())
		}
	}
}

// TestPrometheusGolden locks the full exposition format for one registry:
// ordering, HELP/TYPE lines, label canonicalisation, and value formatting.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("miras_http_requests_total", "HTTP requests served.", "endpoint", "step").Add(3)
	r.Counter("miras_http_requests_total", "HTTP requests served.", "endpoint", "create").Inc()
	r.Gauge("miras_sessions_live", "Live sessions.").Set(2)
	// Labels given in non-sorted order must render sorted by key.
	r.Gauge("miras_env_wip", "Total WIP.", "session", "s1").Set(7.5)
	// Binary-exact observations keep the rendered _sum stable.
	h := r.Histogram("miras_window_seconds", "Window wall time.", []float64{0.25, 1})
	h.Observe(0.125)
	h.Observe(0.5)
	h.Observe(3)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP miras_env_wip Total WIP.
# TYPE miras_env_wip gauge
miras_env_wip{session="s1"} 7.5
# HELP miras_http_requests_total HTTP requests served.
# TYPE miras_http_requests_total counter
miras_http_requests_total{endpoint="create"} 1
miras_http_requests_total{endpoint="step"} 3
# HELP miras_sessions_live Live sessions.
# TYPE miras_sessions_live gauge
miras_sessions_live 2
# HELP miras_window_seconds Window wall time.
# TYPE miras_window_seconds histogram
miras_window_seconds_bucket{le="0.25"} 1
miras_window_seconds_bucket{le="1"} 2
miras_window_seconds_bucket{le="+Inf"} 3
miras_window_seconds_sum 3.625
miras_window_seconds_count 3
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestRemoveSeries(t *testing.T) {
	r := NewRegistry()
	r.Gauge("wip", "", "session", "s1").Set(1)
	r.Gauge("wip", "", "session", "s2").Set(2)
	r.Remove("wip", "session", "s1")
	r.Remove("absent_metric", "session", "s1") // no-op
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), `session="s1"`) {
		t.Fatalf("removed series still rendered:\n%s", b.String())
	}
	if !strings.Contains(b.String(), `wip{session="s2"} 2`) {
		t.Fatalf("surviving series missing:\n%s", b.String())
	}
}

func TestGaugeFuncAndHandler(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("answer", "The answer.", func() float64 { return 42 })
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "answer 42") {
		t.Fatalf("handler body missing gauge func value:\n%s", rec.Body.String())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "", "path", "a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `c_total{path="a\"b\\c\nd"} 1`) {
		t.Fatalf("escaping wrong:\n%s", b.String())
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on counter/gauge name collision")
		}
	}()
	r := NewRegistry()
	r.Counter("x", "")
	r.Gauge("x", "")
}
