package obs

import (
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// MountDebug mounts the operational endpoints on mux:
//
//	GET /metrics        the registry in Prometheus text format
//	GET /healthz        liveness probe ("ok")
//	    /debug/pprof/*  net/http/pprof profiling handlers
//
// pprof is mounted explicitly (not via the package's DefaultServeMux side
// effect) so servers with custom muxes get it too.
func MountDebug(mux *http.ServeMux, reg *Registry) {
	mux.Handle("GET /metrics", reg.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// RegisterProcessMetrics adds scrape-time process gauges (goroutines, heap,
// GC cycles, uptime) so /metrics is never empty, even on an idle server.
func RegisterProcessMetrics(reg *Registry) {
	start := time.Now()
	reg.GaugeFunc("process_goroutines", "Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("process_uptime_seconds", "Seconds since process metrics were registered.",
		func() float64 { return time.Since(start).Seconds() })
	reg.GaugeFunc("process_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	reg.GaugeFunc("process_gc_cycles_total", "Completed GC cycles.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.NumGC)
		})
}
