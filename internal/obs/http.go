package obs

import (
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"time"
)

// MountDebug mounts the operational endpoints on mux:
//
//	GET /metrics        the registry in Prometheus text format
//	GET /healthz        liveness probe ("ok")
//	    /debug/pprof/*  net/http/pprof profiling handlers
//
// pprof is mounted explicitly (not via the package's DefaultServeMux side
// effect) so servers with custom muxes get it too.
func MountDebug(mux *http.ServeMux, reg *Registry) {
	mux.Handle("GET /metrics", reg.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// RegisterProcessMetrics adds scrape-time process gauges (goroutines, heap,
// GC cycles, uptime) so /metrics is never empty, even on an idle server.
func RegisterProcessMetrics(reg *Registry) {
	start := time.Now()
	reg.GaugeFunc("process_goroutines", "Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("process_uptime_seconds", "Seconds since process metrics were registered.",
		func() float64 { return time.Since(start).Seconds() })
	reg.GaugeFunc("process_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	reg.GaugeFunc("process_gc_cycles_total", "Completed GC cycles.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.NumGC)
		})
	reg.GaugeFunc("process_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.PauseTotalNs) / 1e9
		})
	reg.GaugeFunc("process_gomaxprocs", "Value of GOMAXPROCS.",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
	reg.Gauge("miras_build_info", "Build information; value is always 1.",
		"go_version", runtime.Version(), "revision", buildRevision()).Set(1)
}

// buildRevision extracts the VCS revision stamped into the binary, or
// "unknown" for test binaries and unstamped builds.
func buildRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" {
			if len(s.Value) > 12 {
				return s.Value[:12]
			}
			return s.Value
		}
	}
	return "unknown"
}
