// Package obs is the runtime observability layer: a stdlib-only metrics
// registry rendered in Prometheus text exposition format, and a
// sim-time-aware structured event recorder (JSONL over log/slog).
//
// The registry serves the ROADMAP's production-server goal: counters,
// gauges, and fixed-bucket histograms safe for concurrent use, scraped from
// miras-server's /metrics endpoint. The recorder serves the paper's
// evaluation methodology (§VI): every per-window observable the controller
// sees — WIP vectors, allocations, rewards, model losses — can be written
// as a replayable JSONL trace.
//
// Everything is nil-safe: a nil *Recorder swallows events with zero
// allocations, so instrumented hot paths (rl.DDPG.Update, envmodel.Model.Fit)
// cost one pointer comparison when observability is off.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default latency histogram bucket upper bounds, in
// seconds — the conventional Prometheus spread from sub-millisecond to
// tens of seconds.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// metricType tags a family with its exposition TYPE line.
type metricType int

const (
	counterType metricType = iota
	gaugeType
	histogramType
)

func (t metricType) String() string {
	switch t {
	case counterType:
		return "counter"
	case gaugeType:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry is a concurrent metric registry. All accessor methods have
// get-or-create semantics: the first call registers the series, later calls
// with the same name and labels return the same metric. Registration with a
// name already bound to a different metric type panics (a programming
// error, like a duplicate flag).
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// family groups every labelled series of one metric name.
type family struct {
	name    string
	help    string
	typ     metricType
	buckets []float64 // histogram families only

	mu     sync.Mutex
	series map[string]any // labelKey -> *Counter | *Gauge | *Histogram | funcGauge
}

// funcGauge is a gauge whose value is computed at scrape time.
type funcGauge struct{ fn func() float64 }

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Counter returns the counter for name and the given label pairs,
// registering it on first use.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	f := r.family(name, help, counterType, nil)
	return f.get(labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge for name and the given label pairs, registering
// it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	f := r.family(name, help, gaugeType, nil)
	return f.get(labels, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is fn(), evaluated at every
// scrape. Re-registering the same series replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	f := r.family(name, help, gaugeType, nil)
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.series[key] = funcGauge{fn: fn}
}

// Histogram returns the histogram for name and the given label pairs,
// registering it on first use with the given bucket upper bounds (ascending;
// a terminal +Inf bucket is implicit). Nil buckets mean DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending at %d", name, i))
		}
	}
	f := r.family(name, help, histogramType, buckets)
	return f.get(labels, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// Remove drops one labelled series, e.g. when the session it described is
// deleted. Removing an absent series is a no-op.
func (r *Registry) Remove(name string, labels ...string) {
	r.mu.Lock()
	f, ok := r.fams[name]
	r.mu.Unlock()
	if !ok {
		return
	}
	key := labelKey(labels)
	f.mu.Lock()
	delete(f.series, key)
	f.mu.Unlock()
}

// family finds or registers the family for name.
func (r *Registry) family(name, help string, typ metricType, buckets []float64) *family {
	checkMetricName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s",
				name, f.typ, typ))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, buckets: buckets,
		series: make(map[string]any)}
	r.fams[name] = f
	return f
}

// get finds or creates the series for the label pairs.
func (f *family) get(labels []string, mk func() any) any {
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m
	}
	m := mk()
	f.series[key] = m
	return m
}

// labelKey canonicalises alternating key/value label pairs into the
// exposition-format label string (keys sorted, values escaped), e.g.
// `{endpoint="step",session="s1"}`. Empty labels yield "".
func labelKey(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", labels))
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		checkLabelName(labels[i])
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].k < pairs[b].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func checkMetricName(name string) {
	if name == "" {
		panic("obs: empty metric name")
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			panic(fmt.Sprintf("obs: invalid metric name %q", name))
		}
	}
}

func checkLabelName(name string) {
	if name == "" {
		panic("obs: empty label name")
	}
	for i, c := range name {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			panic(fmt.Sprintf("obs: invalid label name %q", name))
		}
	}
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// --- metric kinds ---

// Counter is a monotonically increasing integer counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (atomically, via CAS).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets (cumulative at render
// time, per the exposition format's `le` convention).
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	sum    Gauge
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value. Bucket bounds are inclusive upper bounds
// (v ≤ bound), matching Prometheus `le` semantics.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// --- exposition ---

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4), families and series in sorted order so
// output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.render(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) render(b *strings.Builder) {
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type row struct {
		key string
		m   any
	}
	rows := make([]row, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, row{k, f.series[k]})
	}
	f.mu.Unlock()

	if len(rows) == 0 {
		return
	}
	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	for _, rw := range rows {
		switch m := rw.m.(type) {
		case *Counter:
			fmt.Fprintf(b, "%s%s %d\n", f.name, rw.key, m.Value())
		case *Gauge:
			fmt.Fprintf(b, "%s%s %s\n", f.name, rw.key, formatFloat(m.Value()))
		case funcGauge:
			fmt.Fprintf(b, "%s%s %s\n", f.name, rw.key, formatFloat(m.fn()))
		case *Histogram:
			renderHistogram(b, f.name, rw.key, m)
		}
	}
}

// renderHistogram emits the cumulative _bucket series plus _sum and _count.
func renderHistogram(b *strings.Builder, name, key string, h *Histogram) {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name,
			addLabel(key, "le", formatFloat(bound)), cum)
	}
	total := h.count.Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, addLabel(key, "le", "+Inf"), total)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, key, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, key, total)
}

// addLabel splices one more label pair into an already-rendered label set.
func addLabel(key, k, v string) string {
	pair := k + `="` + escapeLabelValue(v) + `"`
	if key == "" {
		return "{" + pair + "}"
	}
	return key[:len(key)-1] + "," + pair + "}"
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry in exposition format
// — the /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Render errors after the header can only be dropped; the writer
		// is the network connection.
		_ = r.WritePrometheus(w)
	})
}
