package obs

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync"
)

// Recorder writes structured control-loop events as JSON lines through a
// log/slog JSONHandler. Events carry virtual (simulation) time via T, not
// wall-clock time — the handler strips slog's time attribute so traces are
// deterministic and replayable.
//
// A nil *Recorder is valid and fully disabled: every method is a nil check,
// and the event-builder chain allocates nothing, so hot paths can stay
// instrumented unconditionally.
//
// Recorder is safe for concurrent use; each event is written as one line.
type Recorder struct {
	logger *slog.Logger
	level  slog.Level
	pool   sync.Pool
	out    *lockedWriter
}

// lockedWriter serialises writes from concurrent emitters (slog handlers
// require a concurrency-safe writer) and owns the optional flush/close
// chain for file-backed recorders.
type lockedWriter struct {
	mu    sync.Mutex
	w     io.Writer
	flush func() error
	close func() error
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// NewRecorder returns a recorder writing JSONL events at or above level
// to w.
func NewRecorder(w io.Writer, level slog.Level) *Recorder {
	out := &lockedWriter{w: w}
	h := slog.NewJSONHandler(out, &slog.HandlerOptions{
		Level: level,
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if len(groups) == 0 && a.Key == slog.TimeKey {
				return slog.Attr{} // drop wall time: traces must be replayable
			}
			return a
		},
	})
	r := &Recorder{logger: slog.New(h), level: level, out: out}
	r.pool.New = func() any { return &Event{attrs: make([]slog.Attr, 0, 16)} }
	return r
}

// FileRecorder opens path (truncating) and returns a buffered recorder at
// the named level ("debug", "info", "warn", "error"). An empty path returns
// a nil (disabled) recorder with no error — the CLI -trace-out contract.
// Close flushes and closes the file.
func FileRecorder(path, level string) (*Recorder, error) {
	lvl, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	if path == "" {
		return nil, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: open trace file: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	r := NewRecorder(bw, lvl)
	r.out.flush = bw.Flush
	r.out.close = f.Close
	return r, nil
}

// ParseLevel parses a slog level name ("debug", "info", "warn", "error",
// case-insensitive, with optional +N/-N offsets as in slog).
func ParseLevel(s string) (slog.Level, error) {
	var l slog.Level
	if err := l.UnmarshalText([]byte(s)); err != nil {
		return 0, fmt.Errorf("obs: bad log level %q (debug, info, warn, error)", s)
	}
	return l, nil
}

// Enabled reports whether events at lvl would be recorded. A nil recorder
// is never enabled; use it to guard instrumentation that must build slices
// or other allocating arguments.
func (r *Recorder) Enabled(lvl slog.Level) bool {
	return r != nil && lvl >= r.level
}

// Close flushes buffered output and closes the underlying file, if any.
// Safe on a nil recorder.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.out.mu.Lock()
	defer r.out.mu.Unlock()
	if r.out.flush != nil {
		if err := r.out.flush(); err != nil {
			return err
		}
	}
	if r.out.close != nil {
		return r.out.close()
	}
	return nil
}

// Event starts an info-level event named name, or returns nil (all builder
// methods no-op) when disabled.
func (r *Recorder) Event(name string) *Event { return r.at(slog.LevelInfo, name) }

// Debug starts a debug-level event — the level used by per-step hot-path
// telemetry (DDPG updates, model epochs, consumer lifecycle).
func (r *Recorder) Debug(name string) *Event { return r.at(slog.LevelDebug, name) }

func (r *Recorder) at(lvl slog.Level, name string) *Event {
	if r == nil || lvl < r.level {
		return nil
	}
	e := r.pool.Get().(*Event)
	e.rec, e.level, e.name = r, lvl, name
	return e
}

// Event accumulates attributes for one JSONL line. Builders are pooled;
// every started event must end with Emit. A nil *Event (disabled recorder)
// accepts the whole chain as no-ops.
type Event struct {
	rec   *Recorder
	level slog.Level
	name  string
	attrs []slog.Attr
}

// T attaches the virtual-time attribute "t" (simulation seconds).
func (e *Event) T(simTime float64) *Event { return e.F64("t", simTime) }

// F64 attaches a float attribute.
func (e *Event) F64(k string, v float64) *Event {
	if e == nil {
		return nil
	}
	e.attrs = append(e.attrs, slog.Float64(k, v))
	return e
}

// Int attaches an int attribute.
func (e *Event) Int(k string, v int) *Event {
	if e == nil {
		return nil
	}
	e.attrs = append(e.attrs, slog.Int(k, v))
	return e
}

// Uint attaches a uint64 attribute.
func (e *Event) Uint(k string, v uint64) *Event {
	if e == nil {
		return nil
	}
	e.attrs = append(e.attrs, slog.Uint64(k, v))
	return e
}

// Str attaches a string attribute.
func (e *Event) Str(k, v string) *Event {
	if e == nil {
		return nil
	}
	e.attrs = append(e.attrs, slog.String(k, v))
	return e
}

// Bool attaches a bool attribute.
func (e *Event) Bool(k string, v bool) *Event {
	if e == nil {
		return nil
	}
	e.attrs = append(e.attrs, slog.Bool(k, v))
	return e
}

// F64s attaches a float-slice attribute (serialised as a JSON array). The
// slice is read during Emit, synchronously, so callers may reuse it after.
func (e *Event) F64s(k string, v []float64) *Event {
	if e == nil {
		return nil
	}
	e.attrs = append(e.attrs, slog.Any(k, v))
	return e
}

// Ints attaches an int-slice attribute (serialised as a JSON array).
func (e *Event) Ints(k string, v []int) *Event {
	if e == nil {
		return nil
	}
	e.attrs = append(e.attrs, slog.Any(k, v))
	return e
}

// Emit writes the event as one JSON line and recycles the builder.
func (e *Event) Emit() {
	if e == nil {
		return
	}
	e.rec.logger.LogAttrs(context.Background(), e.level, e.name, e.attrs...)
	rec := e.rec
	e.rec = nil
	e.attrs = e.attrs[:0]
	rec.pool.Put(e)
}
