package obs

import (
	"math"
	"strings"
	"testing"
)

// TestExpositionEdgeCasesGolden pins the exposition corners a scraper is
// most likely to choke on: help-text escaping, label-value escaping
// (including an empty value), the implicit +Inf histogram bucket with an
// infinite observation, and non-finite / exponent-formatted sample values.
func TestExpositionEdgeCasesGolden(t *testing.T) {
	r := NewRegistry()
	r.Gauge("edge_help", "Backslash C:\\tmp\nsecond line.").Set(1)

	h := r.Histogram("edge_hist", "Hist.", []float64{0.5})
	h.Observe(0.25)
	h.Observe(math.Inf(1)) // lands in the implicit +Inf bucket, sum goes +Inf

	r.Counter("edge_labels_total", "", "path", "a\"b\\c\nd", "q", "").Inc()

	r.Gauge("edge_values", "", "kind", "exp").Set(1e6)
	r.Gauge("edge_values", "", "kind", "nan").Set(math.NaN())
	r.Gauge("edge_values", "", "kind", "neginf").Set(math.Inf(-1))

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP edge_help Backslash C:\\tmp\nsecond line.
# TYPE edge_help gauge
edge_help 1
# HELP edge_hist Hist.
# TYPE edge_hist histogram
edge_hist_bucket{le="0.5"} 1
edge_hist_bucket{le="+Inf"} 2
edge_hist_sum +Inf
edge_hist_count 2
# TYPE edge_labels_total counter
edge_labels_total{path="a\"b\\c\nd",q=""} 1
# TYPE edge_values gauge
edge_values{kind="exp"} 1e+06
edge_values{kind="nan"} NaN
edge_values{kind="neginf"} -Inf
`
	if got := b.String(); got != want {
		t.Fatalf("exposition edge cases mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
