// Live time-series history: a fixed-capacity ring that periodically samples
// the metrics Registry, keeping the last N points per series in process so
// an operator (or a test) can see short-term history without running a
// Prometheus server. Served as JSON at GET /v1/debug/timeseries and as a
// dependency-free HTML+SVG sparkline dashboard at GET /debug/dash.

package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"html"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// VisitSeries calls f once per scalar series in deterministic (sorted)
// order: counters and gauges directly, histograms as their _count and _sum
// series. Function gauges are evaluated.
func (r *Registry) VisitSeries(f func(name, labels string, value float64)) {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, 0, len(names))
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()

	for _, fam := range fams {
		fam.mu.Lock()
		keys := make([]string, 0, len(fam.series))
		for k := range fam.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		type row struct {
			key string
			m   any
		}
		rows := make([]row, 0, len(keys))
		for _, k := range keys {
			rows = append(rows, row{k, fam.series[k]})
		}
		fam.mu.Unlock()
		for _, rw := range rows {
			switch m := rw.m.(type) {
			case *Counter:
				f(fam.name, rw.key, float64(m.Value()))
			case *Gauge:
				f(fam.name, rw.key, m.Value())
			case funcGauge:
				f(fam.name, rw.key, m.fn())
			case *Histogram:
				f(fam.name+"_count", rw.key, float64(m.Count()))
				f(fam.name+"_sum", rw.key, m.Sum())
			}
		}
	}
}

// SeriesCount returns the number of labelled series currently registered
// (histograms count once) — the cardinality the per-session cleanup audit
// checks.
func (r *Registry) SeriesCount() int {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	n := 0
	for _, f := range fams {
		f.mu.Lock()
		n += len(f.series)
		f.mu.Unlock()
	}
	return n
}

// TimeSeriesPoint is one sample of one series.
type TimeSeriesPoint struct {
	T float64 `json:"t"`
	V float64 `json:"v"`
}

// tsSeries is the ring buffer for one labelled series.
type tsSeries struct {
	name   string
	labels string
	t, v   []float64
	head   int // next write position
	n      int
}

func (s *tsSeries) push(t, v float64) {
	s.t[s.head], s.v[s.head] = t, v
	s.head = (s.head + 1) % len(s.t)
	if s.n < len(s.t) {
		s.n++
	}
}

func (s *tsSeries) points() []TimeSeriesPoint {
	out := make([]TimeSeriesPoint, 0, s.n)
	start := s.head - s.n
	if start < 0 {
		start += len(s.t)
	}
	for i := 0; i < s.n; i++ {
		j := (start + i) % len(s.t)
		out = append(out, TimeSeriesPoint{T: s.t[j], V: s.v[j]})
	}
	return out
}

// TimeSeriesRing keeps the last capacity samples of every registry series.
// Series that disappear from the registry (e.g. a deleted session's
// per-session gauges) are pruned at the next Sample, so ring cardinality
// tracks registry cardinality. Safe for concurrent use.
type TimeSeriesRing struct {
	mu       sync.Mutex
	capacity int
	series   map[string]*tsSeries
	samples  uint64
}

// NewTimeSeriesRing returns a ring keeping capacity points per series
// (minimum 2).
func NewTimeSeriesRing(capacity int) *TimeSeriesRing {
	if capacity < 2 {
		capacity = 2
	}
	return &TimeSeriesRing{capacity: capacity, series: make(map[string]*tsSeries)}
}

// Sample records one point per registry series at timestamp now (seconds;
// the caller chooses the epoch — the server uses seconds since start) and
// prunes series no longer present in the registry.
func (ts *TimeSeriesRing) Sample(reg *Registry, now float64) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	seen := make(map[string]bool, len(ts.series))
	reg.VisitSeries(func(name, labels string, value float64) {
		key := name + labels
		s, ok := ts.series[key]
		if !ok {
			s = &tsSeries{
				name:   name,
				labels: labels,
				t:      make([]float64, ts.capacity),
				v:      make([]float64, ts.capacity),
			}
			ts.series[key] = s
		}
		s.push(now, value)
		seen[key] = true
	})
	for key := range ts.series {
		if !seen[key] {
			delete(ts.series, key)
		}
	}
	ts.samples++
}

// Run samples reg every interval until ctx is done, stamping points with
// seconds since Run started. The server launches this in a goroutine.
func (ts *TimeSeriesRing) Run(ctx context.Context, reg *Registry, interval time.Duration) {
	start := time.Now()
	ts.Sample(reg, 0) // immediate first sample: never serve an empty ring
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-tick.C:
			ts.Sample(reg, now.Sub(start).Seconds())
		}
	}
}

// SeriesCount returns how many series the ring currently holds.
func (ts *TimeSeriesRing) SeriesCount() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.series)
}

// Samples returns how many sampling passes have run.
func (ts *TimeSeriesRing) Samples() uint64 {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.samples
}

// TimeSeriesDump is the JSON shape of GET /v1/debug/timeseries.
type TimeSeriesDump struct {
	Samples uint64             `json:"samples"`
	Series  []TimeSeriesSeries `json:"series"`
}

// TimeSeriesSeries is one series' retained history.
type TimeSeriesSeries struct {
	Name   string            `json:"name"`
	Labels string            `json:"labels,omitempty"`
	Last   float64           `json:"last"`
	Points []TimeSeriesPoint `json:"points"`
}

// Snapshot returns the ring's full contents, series sorted by name+labels.
func (ts *TimeSeriesRing) Snapshot() TimeSeriesDump {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	keys := make([]string, 0, len(ts.series))
	for k := range ts.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	dump := TimeSeriesDump{Samples: ts.samples, Series: make([]TimeSeriesSeries, 0, len(keys))}
	for _, k := range keys {
		s := ts.series[k]
		pts := s.points()
		last := 0.0
		if len(pts) > 0 {
			last = pts[len(pts)-1].V
		}
		dump.Series = append(dump.Series, TimeSeriesSeries{
			Name:   s.name,
			Labels: s.labels,
			Last:   last,
			Points: pts,
		})
	}
	return dump
}

// Handler serves the ring as JSON — the GET /v1/debug/timeseries endpoint.
func (ts *TimeSeriesRing) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = json.NewEncoder(w).Encode(ts.Snapshot())
	})
}

// DashHandler serves a dependency-free HTML+SVG sparkline dashboard over
// the ring — the GET /debug/dash endpoint. One sparkline per series,
// rendered server-side; refresh the page to refresh the data.
func (ts *TimeSeriesRing) DashHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		dump := ts.Snapshot()
		var b strings.Builder
		b.WriteString(`<!DOCTYPE html><html><head><meta charset="utf-8">` +
			`<title>miras dash</title><style>` +
			`body{font:13px/1.4 monospace;background:#14161a;color:#d8dee9;margin:1.5em}` +
			`h1{font-size:15px} .s{display:inline-block;margin:4px 8px;padding:6px 8px;` +
			`background:#1d2026;border-radius:4px;vertical-align:top}` +
			`.n{color:#8fbcbb}.l{color:#616e88;font-size:11px}.v{color:#ebcb8b}` +
			`svg{display:block;margin-top:4px}polyline{fill:none;stroke:#88c0d0;stroke-width:1.25}` +
			`</style></head><body><h1>miras live time series</h1><p class="l">samples: `)
		fmt.Fprintf(&b, "%d · series: %d</p>", dump.Samples, len(dump.Series))
		for _, s := range dump.Series {
			b.WriteString(`<div class="s"><span class="n">`)
			b.WriteString(html.EscapeString(s.Name))
			b.WriteString(`</span> <span class="v">`)
			fmt.Fprintf(&b, "%g", s.Last)
			b.WriteString(`</span><br><span class="l">`)
			b.WriteString(html.EscapeString(s.Labels))
			b.WriteString(`</span>`)
			writeSparkline(&b, s.Points)
			b.WriteString(`</div>`)
		}
		b.WriteString(`</body></html>`)
		_, _ = w.Write([]byte(b.String()))
	})
}

// writeSparkline renders one series as an inline SVG polyline, scaled into
// a 160×36 box.
func writeSparkline(b *strings.Builder, pts []TimeSeriesPoint) {
	const w, h = 160.0, 36.0
	b.WriteString(`<svg width="160" height="36" viewBox="0 0 160 36">`)
	if len(pts) > 0 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, p := range pts {
			lo, hi = math.Min(lo, p.V), math.Max(hi, p.V)
		}
		span := hi - lo
		if span == 0 || math.IsNaN(span) || math.IsInf(span, 0) {
			span = 1
		}
		b.WriteString(`<polyline points="`)
		for i, p := range pts {
			x := w
			if len(pts) > 1 {
				x = w * float64(i) / float64(len(pts)-1)
			}
			y := h - 2 - (h-4)*((p.V-lo)/span)
			if math.IsNaN(y) || math.IsInf(y, 0) {
				y = h / 2
			}
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(b, "%.1f,%.1f", x, y)
		}
		b.WriteString(`"/>`)
	}
	b.WriteString(`</svg>`)
}
