package shardring

import (
	"fmt"
	"testing"
)

// TestAddMemberRebalance quantifies the consistent-hashing contract on
// scale-up: adding one member to an N-member ring may move keys only TO
// the new member, and the moved fraction must be near the ideal
// 1/(N+1) — bounded here by 2/(N+1) plus slack for vnode placement
// variance. Every unmoved key must keep a byte-identical owner.
func TestAddMemberRebalance(t *testing.T) {
	const nKeys = 20000
	for _, n := range []int{2, 4, 8, 16} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			members := make([]string, n)
			for i := range members {
				members[i] = fmt.Sprintf("shard-%d", i)
			}
			before, err := New(members, 0)
			if err != nil {
				t.Fatal(err)
			}
			after, err := New(append(append([]string{}, members...), "shard-new"), 0)
			if err != nil {
				t.Fatal(err)
			}
			moved := 0
			for _, k := range keys(nKeys) {
				was, is := before.Owner(k), after.Owner(k)
				if was == is {
					continue
				}
				if is != "shard-new" {
					t.Fatalf("key %q moved %s -> %s, but only the new member may gain keys", k, was, is)
				}
				moved++
			}
			frac := float64(moved) / nKeys
			ideal := 1 / float64(n+1)
			// 2x the ideal share plus 2% absolute slack: loose enough for
			// 64-vnode placement variance, tight enough to catch a ring
			// that reshuffles globally (frac would approach 1-1/(n+1)).
			if limit := 2*ideal + 0.02; frac > limit {
				t.Fatalf("adding 1 of %d members moved %.1f%% of keys (ideal %.1f%%, limit %.1f%%)",
					n, frac*100, ideal*100, limit*100)
			}
			if moved == 0 {
				t.Fatal("new member owns nothing")
			}
		})
	}
}

// TestRemoveMemberRebalance is the scale-down mirror: removing one member
// may move keys only FROM that member, within the same quantitative bound.
func TestRemoveMemberRebalance(t *testing.T) {
	const nKeys = 20000
	for _, n := range []int{3, 8, 16} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			members := make([]string, n)
			for i := range members {
				members[i] = fmt.Sprintf("shard-%d", i)
			}
			before, err := New(members, 0)
			if err != nil {
				t.Fatal(err)
			}
			after, err := New(members[:n-1], 0)
			if err != nil {
				t.Fatal(err)
			}
			removed := members[n-1]
			moved := 0
			for _, k := range keys(nKeys) {
				was, is := before.Owner(k), after.Owner(k)
				if was == removed {
					if is == removed {
						t.Fatalf("key %q still owned by removed member %s", k, removed)
					}
					moved++
					continue
				}
				if was != is {
					t.Fatalf("key %q moved %s -> %s though its owner survived", k, was, is)
				}
			}
			frac := float64(moved) / nKeys
			ideal := 1 / float64(n)
			if limit := 2*ideal + 0.02; frac > limit {
				t.Fatalf("removing 1 of %d members moved %.1f%% of keys (ideal %.1f%%, limit %.1f%%)",
					n, frac*100, ideal*100, limit*100)
			}
			if moved == 0 {
				t.Fatal("removed member owned nothing")
			}
		})
	}
}
