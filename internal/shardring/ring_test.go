package shardring

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("s%d", i+1)
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Fatal("empty member list accepted")
	}
	if _, err := New([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty member name accepted")
	}
	if _, err := New([]string{"a", "b", "a"}, 0); err == nil {
		t.Fatal("duplicate member accepted")
	}
}

func TestOwnerDeterministic(t *testing.T) {
	members := []string{"http://a:1", "http://b:2", "http://c:3"}
	r1, err := New(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(500) {
		if r1.Owner(k) != r2.Owner(k) {
			t.Fatalf("key %q: owner differs across identically built rings", k)
		}
		if r1.members[r1.OwnerIndex(k)] != r1.Owner(k) {
			t.Fatalf("key %q: OwnerIndex and Owner disagree", k)
		}
	}
}

// TestBalance checks the virtual-node construction spreads keys roughly
// evenly: with 64 vnodes per member, no member of a 4-member ring should
// own more than twice its fair share of 4000 sequential session ids.
func TestBalance(t *testing.T) {
	members := []string{"shard-0", "shard-1", "shard-2", "shard-3"}
	r, err := New(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const n = 4000
	for _, k := range keys(n) {
		counts[r.Owner(k)]++
	}
	fair := n / len(members)
	for _, m := range members {
		if counts[m] == 0 {
			t.Fatalf("member %s owns no keys: %v", m, counts)
		}
		if counts[m] > 2*fair {
			t.Fatalf("member %s owns %d of %d keys (fair %d): ring badly skewed %v",
				m, counts[m], n, fair, counts)
		}
	}
}

// TestRemovalStability is the consistent-hashing property itself: dropping
// one member may only remap the keys that member owned. Every key owned by
// a surviving member must keep its owner.
func TestRemovalStability(t *testing.T) {
	full := []string{"a", "b", "c", "d"}
	rFull, err := New(full, 0)
	if err != nil {
		t.Fatal(err)
	}
	rLess, err := New([]string{"a", "b", "c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved, kept := 0, 0
	for _, k := range keys(2000) {
		before := rFull.Owner(k)
		after := rLess.Owner(k)
		if before == "d" {
			moved++
			continue // d's keys must land somewhere else; any owner is fine
		}
		if before != after {
			t.Fatalf("key %q moved %s -> %s though its owner survived", k, before, after)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}

// TestSequentialIDSpread pins the avalanche finalizer in Hash: the ids the
// server actually mints are sequential ("s1", "s2", …), and raw FNV-1a
// piles such keys onto one or two members. Every member of an 8-member
// ring must own some of 100 sequential ids.
func TestSequentialIDSpread(t *testing.T) {
	members := make([]string, 8)
	for i := range members {
		members[i] = fmt.Sprintf("shard-%d", i)
	}
	r, err := New(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for _, k := range keys(100) {
		counts[r.Owner(k)]++
	}
	for _, m := range members {
		if counts[m] == 0 {
			t.Fatalf("member %s owns none of 100 sequential ids: %v", m, counts)
		}
	}
}

func TestMembersCopy(t *testing.T) {
	r, err := New([]string{"a", "b"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	got := r.Members()
	got[0] = "mutated"
	if r.Owner("k") == "mutated" || r.Members()[0] != "a" {
		t.Fatal("Members() exposed internal state")
	}
	if r.Size() != 2 {
		t.Fatalf("Size=%d", r.Size())
	}
}
