// Package shardring implements the consistent-hash ring that decides which
// shard owns a session id. The same ring runs in two places: inside one
// miras-server process it spreads sessions over the in-process shards, and
// inside miras-router it picks the shard *process* a request must be
// forwarded to. Both sides compute ownership from nothing but the member
// list and the id — there is no gossip, no coordination, and no state to
// reconcile: any party holding the same member list derives the same owner.
//
// The ring is the classic Karger construction: every member is hashed onto
// a 64-bit circle at V virtual points (FNV-1a over "member#v"), a key is
// hashed onto the same circle, and the key's owner is the member whose
// point follows the key clockwise. Removing a member remaps only the keys
// that member owned; all other assignments are untouched — the property
// that makes drain-and-rehydrate a local operation instead of a full
// reshuffle.
//
// Rings are immutable after New, so lookups are lock-free and safe for
// concurrent use.
package shardring

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the per-member virtual point count used when New
// is given a non-positive vnodes. 64 points per member keeps the maximum
// member load within a few percent of uniform for small member counts
// while the ring stays tiny (64·N points).
const DefaultVirtualNodes = 64

// point is one virtual node: a position on the hash circle and the index
// of the member that owns it.
type point struct {
	hash   uint64
	member int
}

// Ring maps keys to members by consistent hashing. The zero value is not
// usable; construct with New.
type Ring struct {
	members []string
	points  []point // sorted by hash ascending
}

// New builds a ring over members with vnodes virtual points each
// (DefaultVirtualNodes when vnodes <= 0). Members must be non-empty and
// unique — duplicate members would silently double a shard's share.
func New(members []string, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("shardring: no members")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(members))
	r := &Ring{
		members: append([]string(nil), members...),
		points:  make([]point, 0, len(members)*vnodes),
	}
	for i, m := range members {
		if m == "" {
			return nil, fmt.Errorf("shardring: empty member name at index %d", i)
		}
		if seen[m] {
			return nil, fmt.Errorf("shardring: duplicate member %q", m)
		}
		seen[m] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{
				hash:   Hash(fmt.Sprintf("%s#%d", m, v)),
				member: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Tie-break on member index so the ring is deterministic even in
		// the astronomically unlikely event of a 64-bit hash collision.
		return r.points[a].member < r.points[b].member
	})
	return r, nil
}

// Hash is the ring's key hash: 64-bit FNV-1a finished with a MurmurHash3
// fmix64 avalanche. Raw FNV-1a has no final mixing, so keys sharing a
// prefix and differing in a trailing character — exactly the shape of
// sequential session ids like "s41"/"s42" — land within a sliver of the
// 64-bit circle and pile onto one or two members; the finalizer spreads
// every bit of difference across the word. Exported so tests and tools can
// reason about placement without re-implementing it.
func Hash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// OwnerIndex returns the index (into the construction member list) of the
// member owning key.
func (r *Ring) OwnerIndex(key string) int {
	h := Hash(key)
	// First point clockwise from h, wrapping to points[0].
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// Owner returns the member name owning key.
func (r *Ring) Owner(key string) string {
	return r.members[r.OwnerIndex(key)]
}

// Members returns the construction member list (a copy).
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// Size returns the number of members.
func (r *Ring) Size() int { return len(r.members) }
