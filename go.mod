module miras

go 1.22
