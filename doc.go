// Package miras is a from-scratch Go reproduction of "MIRAS: Model-based
// Reinforcement Learning for Microservice Resource Allocation over
// Scientific Workflows" (Yang, Nguyen, Jin, Nahrstedt — ICDCS 2019).
//
// The library lives under internal/ (see DESIGN.md for the system
// inventory), runnable programs under cmd/ and examples/, and the
// benchmark harness regenerating every figure of the paper's evaluation in
// bench_test.go.
package miras
